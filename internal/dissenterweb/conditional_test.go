package dissenterweb

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

// Conditional-request correctness for the composed-response layer
// (respond.go): strong ETags revalidate to bodyless 304s, a 304 is
// NEVER served across an invalidation or in-place patch (the stale
// validator must yield 200 + the new body, pinned against the
// full-render oracles), and the write-time gzip variant decompresses
// byte-identical to the identity body. The replica variant drives the
// same guarantees through EventInvalidator, and the concurrent variant
// races writers against revalidating readers under -race.

// condFetch is fetch with an If-None-Match validator.
func condFetch(t *testing.T, rawurl, session, etag string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.AddCookie(&http.Cookie{Name: "session", Value: session})
	}
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// gzipFetch requests the gzip variant explicitly (setting the header
// ourselves disables the transport's transparent decompression, so the
// raw variant and its headers are observable) and returns the
// decompressed body.
func gzipFetch(t *testing.T, rawurl, session string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.AddCookie(&http.Cookie{Name: "session", Value: session})
	}
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("GET %s: Content-Encoding = %q, want gzip", rawurl, ce)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("gzip reader: %v", err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	return resp, string(body)
}

func TestETagRevalidatesTo304(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerOracleSessions(s)
	cu := busyURL(t, priv)
	user := priv.DB.ActiveUsers()[0]

	pages := []string{
		"/discussion?url=" + url.QueryEscape(cu.URL),
		"/user/" + user.Username,
		"/trends",
		"/leaderboard",
	}
	for _, v := range oracleViews {
		for _, p := range pages {
			resp, body := fetch(t, srv.URL+p, v.token)
			etag := resp.Header.Get("ETag")
			if etag == "" {
				t.Fatalf("%s view %q: no ETag on 200", p, v.token)
			}
			if body == "" {
				t.Fatalf("%s view %q: empty 200 body", p, v.token)
			}
			cresp, cbody := condFetch(t, srv.URL+p, v.token, etag)
			if cresp.StatusCode != http.StatusNotModified {
				t.Fatalf("%s view %q: fresh If-None-Match %s = %d, want 304",
					p, v.token, etag, cresp.StatusCode)
			}
			if cbody != "" {
				t.Fatalf("%s view %q: 304 carried %d body bytes", p, v.token, len(cbody))
			}
			if got := cresp.Header.Get("ETag"); got != etag {
				t.Fatalf("%s view %q: 304 ETag = %q, want %q", p, v.token, got, etag)
			}
		}
	}
}

// TestNo304AcrossInvalidation is the oracle for the tentpole's safety
// property: after a write lands (vote patches in place, comment
// patches + invalidates, both bump the generation), a client
// revalidating with the pre-write ETag must get a full 200 whose body
// equals the independent post-write render — for every session view.
func TestNo304AcrossInvalidation(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerOracleSessions(s)
	poster := registerPoster(t, s, priv, "poster-tok")
	cu := busyURL(t, priv)
	discussion := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	// Stale validator across an in-place vote patch.
	for _, v := range oracleViews {
		resp, _ := fetch(t, discussion, v.token)
		stale := resp.Header.Get("ETag")

		vresp, _ := fetch(t, srv.URL+"/discussion/vote?dir=up&url="+url.QueryEscape(cu.URL), "")
		if vresp.StatusCode != http.StatusOK {
			t.Fatalf("vote status = %d", vresp.StatusCode)
		}

		cresp, cbody := condFetch(t, discussion, v.token, stale)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("view %q: stale ETag after vote = %d, want 200", v.token, cresp.StatusCode)
		}
		if want := oracleDiscussion(priv.DB, cu, v.sess); cbody != want {
			t.Fatalf("view %q: post-vote conditional body diverges from oracle (%d vs %d bytes)",
				v.token, len(cbody), len(want))
		}
		if fresh := cresp.Header.Get("ETag"); fresh == stale || fresh == "" {
			t.Fatalf("view %q: post-vote ETag %q did not change from %q", v.token, fresh, stale)
		}
	}

	// Stale validator across a posted comment: the discussion stream
	// grows, the author's home views and trends drop.
	home := srv.URL + "/user/" + poster.Username
	for i, v := range oracleViews {
		dresp, _ := fetch(t, discussion, v.token)
		hresp, _ := fetch(t, home, v.token)
		tresp, _ := fetch(t, srv.URL+"/trends", v.token)
		staleDisc, staleHome, staleTrends := dresp.Header.Get("ETag"), hresp.Header.Get("ETag"), tresp.Header.Get("ETag")

		form := url.Values{
			"url":  {cu.URL},
			"text": {fmt.Sprintf("conditional probe %d", i)},
		}
		if presp, pbody := postComment(t, srv, "poster-tok", form); presp.StatusCode != http.StatusOK {
			t.Fatalf("post status = %d body %q", presp.StatusCode, pbody)
		}

		cresp, cbody := condFetch(t, discussion, v.token, staleDisc)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("view %q: stale ETag after comment = %d, want 200", v.token, cresp.StatusCode)
		}
		if want := oracleDiscussion(priv.DB, cu, v.sess); cbody != want {
			t.Fatalf("view %q: post-comment conditional body diverges from oracle", v.token)
		}
		hcresp, hcbody := condFetch(t, home, v.token, staleHome)
		if hcresp.StatusCode != http.StatusOK {
			t.Fatalf("view %q: stale home ETag after comment = %d, want 200", v.token, hcresp.StatusCode)
		}
		if want := oracleHome(priv.DB, poster, v.sess); hcbody != want {
			t.Fatalf("view %q: post-comment home body diverges from oracle", v.token)
		}
		if tcresp, _ := condFetch(t, srv.URL+"/trends", v.token, staleTrends); tcresp.StatusCode != http.StatusOK {
			t.Fatalf("view %q: stale trends ETag after comment = %d, want 200", v.token, tcresp.StatusCode)
		}
	}

	// Stale leaderboard validator across a vote (exact-key invalidation).
	lresp, _ := fetch(t, srv.URL+"/leaderboard", "")
	staleLeader := lresp.Header.Get("ETag")
	fetch(t, srv.URL+"/discussion/vote?dir=down&url="+url.QueryEscape(cu.URL), "")
	if lcresp, lbody := condFetch(t, srv.URL+"/leaderboard", "", staleLeader); lcresp.StatusCode != http.StatusOK || lbody == "" {
		t.Fatalf("stale leaderboard ETag after vote = %d (%d bytes), want 200 + body", lcresp.StatusCode, len(lbody))
	}
}

// TestGzipVariantByteIdentical pins the write-time gzip variant: it
// must decompress to exactly the identity body, which itself must
// equal the independent oracle render, under the same ETag.
func TestGzipVariantByteIdentical(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerOracleSessions(s)
	cu := busyURL(t, priv)
	user := priv.DB.ActiveUsers()[0]

	pages := []string{
		"/discussion?url=" + url.QueryEscape(cu.URL),
		"/user/" + user.Username,
		"/trends",
		"/leaderboard",
	}
	for _, v := range oracleViews {
		for _, p := range pages {
			iresp, ibody := fetch(t, srv.URL+p, v.token)
			gresp, gbody := gzipFetch(t, srv.URL+p, v.token)
			if gbody != ibody {
				t.Fatalf("%s view %q: gzip variant decompresses to %d bytes, identity is %d",
					p, v.token, len(gbody), len(ibody))
			}
			if ge, ie := gresp.Header.Get("ETag"), iresp.Header.Get("ETag"); ge != ie {
				t.Fatalf("%s view %q: variant ETags differ: gzip %q vs identity %q", p, v.token, ge, ie)
			}
		}
	}
	// The discussion page against the from-scratch oracle, both codings.
	for _, v := range oracleViews {
		_, gbody := gzipFetch(t, srv.URL+pages[0], v.token)
		if want := oracleDiscussion(priv.DB, cu, v.sess); gbody != want {
			t.Fatalf("view %q: gunzipped discussion diverges from oracle render", v.token)
		}
	}
}

// TestReplicaNo304AcrossReplicatedWrite drives the same safety
// property on a read-only server whose coherence comes from
// EventInvalidator: writes land in the store from below (as the
// replication stream would apply them) and must still kill stale
// validators.
func TestReplicaNo304AcrossReplicatedWrite(t *testing.T) {
	priv := synth.Generate(synth.NewConfig(1.0/512, 17))
	s := NewServer(priv.DB, ReadOnly(), WithURLRateLimit(0, 0))
	registerOracleSessions(s)
	priv.DB.RegisterView(s.EventInvalidator())
	srv := httptest.NewServer(s)
	defer srv.Close()

	cu := busyURL(t, priv)
	author := priv.DB.ActiveUsers()[0]
	discussion := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)
	idgen := ids.NewGenerator(0x304)

	for _, v := range oracleViews {
		resp, _ := fetch(t, discussion, v.token)
		stale := resp.Header.Get("ETag")

		// A replicated vote: applied through the store write path, so the
		// invalidator's VoteCast coherence runs synchronously in dispatch.
		priv.DB.Vote(cu.ID, 1, 0)

		cresp, cbody := condFetch(t, discussion, v.token, stale)
		if cresp.StatusCode != http.StatusOK {
			t.Fatalf("view %q: stale ETag after replicated vote = %d, want 200", v.token, cresp.StatusCode)
		}
		if want := oracleDiscussion(priv.DB, cu, v.sess); cbody != want {
			t.Fatalf("view %q: post-replication body diverges from oracle", v.token)
		}

		// A replicated comment.
		resp2, _ := fetch(t, discussion, v.token)
		stale2 := resp2.Header.Get("ETag")
		id := idgen.New()
		priv.DB.AddComment(&platform.Comment{
			ID:        id,
			URLID:     cu.ID,
			AuthorID:  author.AuthorID,
			Text:      "replicated comment " + v.token,
			CreatedAt: id.Time(),
		})
		cresp2, cbody2 := condFetch(t, discussion, v.token, stale2)
		if cresp2.StatusCode != http.StatusOK {
			t.Fatalf("view %q: stale ETag after replicated comment = %d, want 200", v.token, cresp2.StatusCode)
		}
		if want := oracleDiscussion(priv.DB, cu, v.sess); cbody2 != want {
			t.Fatalf("view %q: post-replication comment body diverges from oracle", v.token)
		}

		// And the fresh validator still revalidates.
		fresh := cresp2.Header.Get("ETag")
		if r304, _ := condFetch(t, discussion, v.token, fresh); r304.StatusCode != http.StatusNotModified {
			t.Fatalf("view %q: fresh ETag after writes = %d, want 304", v.token, r304.StatusCode)
		}
	}
}

// TestConditional304NeverStaleUnderWrites races posters and voters
// against revalidating readers: every reader maintains its last seen
// (ETag, body) per view and revalidates in a loop; when writes
// quiesce, a final revalidation may answer 304 only if the remembered
// body is byte-identical to the full-render oracle of the final state.
func TestConditional304NeverStaleUnderWrites(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerOracleSessions(s)
	registerPoster(t, s, priv, "poster-tok")
	hot := allURLs(priv.DB)[:4]

	const posters, perPoster, voters, perVoter, readers = 3, 10, 2, 10, 2
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				form := url.Values{
					"url":  {hot[(p+i)%len(hot)].URL},
					"text": {fmt.Sprintf("revalidation race %d-%d", p, i)},
				}
				if i%3 == 0 {
					form.Set("nsfw", "1")
				}
				if resp, body := postComment(t, srv, "poster-tok", form); resp.StatusCode != http.StatusOK {
					t.Errorf("racing post status = %d body %q", resp.StatusCode, body)
					return
				}
			}
		}(p)
	}
	for v := 0; v < voters; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			for i := 0; i < perVoter; i++ {
				dir := "up"
				if (v+i)%3 == 0 {
					dir = "down"
				}
				resp, _ := fetch(t, srv.URL+"/discussion/vote?dir="+dir+
					"&url="+url.QueryEscape(hot[i%len(hot)].URL), "")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("racing vote status = %d", resp.StatusCode)
					return
				}
			}
		}(v)
	}

	type remembered struct{ etag, body string }
	finals := make([]map[string]remembered, readers)
	for rd := 0; rd < readers; rd++ {
		finals[rd] = make(map[string]remembered)
		wg.Add(1)
		go func(rd int, seen map[string]remembered) {
			defer wg.Done()
			for i := 0; i < 3*perPoster; i++ {
				v := oracleViews[(rd+i)%len(oracleViews)]
				cu := hot[i%len(hot)]
				target := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)
				mapKey := cu.URL + "|" + v.token
				prev := seen[mapKey]
				resp, body := condFetch(t, target, v.token, prev.etag)
				switch resp.StatusCode {
				case http.StatusOK:
					seen[mapKey] = remembered{etag: resp.Header.Get("ETag"), body: body}
				case http.StatusNotModified:
					if prev.body == "" {
						t.Errorf("reader %d: 304 for a validator we never held a body for", rd)
						return
					}
				default:
					t.Errorf("reader %d: conditional GET = %d", rd, resp.StatusCode)
					return
				}
			}
		}(rd, finals[rd])
	}
	wg.Wait()

	// Quiesced: a 304 against the remembered validator asserts the
	// remembered body IS the current page; a 200 must deliver it.
	for rd, seen := range finals {
		for _, v := range oracleViews {
			for _, cu := range hot {
				want := oracleDiscussion(priv.DB, cu, v.sess)
				prev := seen[cu.URL+"|"+v.token]
				target := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)
				resp, body := condFetch(t, target, v.token, prev.etag)
				switch resp.StatusCode {
				case http.StatusNotModified:
					if prev.body != want {
						t.Errorf("reader %d %s view %q: 304 validated a body that is NOT the final page (%d vs %d bytes)",
							rd, cu.URL, v.token, len(prev.body), len(want))
					}
				case http.StatusOK:
					if body != want {
						t.Errorf("reader %d %s view %q: final 200 diverges from oracle", rd, cu.URL, v.token)
					}
				default:
					t.Errorf("reader %d: final conditional GET = %d", rd, resp.StatusCode)
				}
			}
		}
	}
}
