package dissenterweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"dissenter/internal/htmlx"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

var out = synth.Generate(synth.NewConfig(1.0/512, 6))

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	if len(opts) == 0 {
		opts = []Option{WithURLRateLimit(0, 0)}
	}
	s := NewServer(out.DB, opts...)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func fetch(t *testing.T, rawurl, session string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.AddCookie(&http.Cookie{Name: "session", Value: session})
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func someDissenterUser(t *testing.T) *platform.User {
	t.Helper()
	for _, u := range out.DB.ActiveUsers() {
		return u
	}
	t.Fatal("no active users")
	return nil
}

func TestHomePageSizeSideChannel(t *testing.T) {
	_, srv := newTestServer(t)
	u := someDissenterUser(t)
	resp, body := fetch(t, srv.URL+"/user/"+u.Username, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(body) < 10_000 {
		t.Errorf("existing account page is %d bytes, want >= 10kB", len(body))
	}
	resp, body = fetch(t, srv.URL+"/user/no-such-user-ever", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing user status = %d", resp.StatusCode)
	}
	if len(body) > 400 {
		t.Errorf("missing account page is %d bytes, want ~150", len(body))
	}
}

func TestNonDissenterGabUserHasNoHomePage(t *testing.T) {
	_, srv := newTestServer(t)
	for _, u := range allUsers(out.DB) {
		if !u.HasDissenter {
			resp, _ := fetch(t, srv.URL+"/user/"+u.Username, "")
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("Gab-only user %q has a Dissenter page", u.Username)
			}
			return
		}
	}
}

func TestHomePageListsCommentedURLs(t *testing.T) {
	_, srv := newTestServer(t)
	u := someDissenterUser(t)
	_, body := fetch(t, srv.URL+"/user/"+u.Username, "")
	items := htmlx.FindTags(body, "li")
	urls := out.DB.URLsCommentedBy(u.AuthorID)
	if len(items) == 0 {
		t.Fatal("no commented URLs listed")
	}
	if len(items) > len(urls) {
		t.Errorf("listed %d URLs, ground truth has %d", len(items), len(urls))
	}
	if got, _ := htmlx.Attr(body, "data-author-id"); got != u.AuthorID.String() {
		t.Errorf("author-id = %q, want %q", got, u.AuthorID)
	}
}

func TestDiscussionPage(t *testing.T) {
	_, srv := newTestServer(t)
	// Pick a URL with several comments.
	var target *platform.CommentURL
	for _, cu := range allURLs(out.DB) {
		if len(out.DB.CommentsOnURL(cu.ID)) >= 3 {
			target = cu
			break
		}
	}
	if target == nil {
		t.Fatal("no multi-comment URL")
	}
	resp, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(target.URL), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got, _ := htmlx.Attr(body, "data-commenturl-id"); got != target.ID.String() {
		t.Errorf("commenturl-id = %q, want %q", got, target.ID)
	}
	comments := htmlx.FindTags(body, "div")
	visibleGroundTruth := 0
	for _, c := range out.DB.CommentsOnURL(target.ID) {
		if !c.Hidden() {
			visibleGroundTruth++
		}
	}
	// First div is the discussion header.
	if len(comments)-1 != visibleGroundTruth {
		t.Errorf("rendered %d comments, want %d", len(comments)-1, visibleGroundTruth)
	}
}

func TestDiscussionUnknownURL(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape("https://example.com/never-seen"), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "No comments yet") {
		t.Error("unknown URL should render the empty invitation page")
	}
	resp, _ = fetch(t, srv.URL+"/discussion", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing url param status = %d", resp.StatusCode)
	}
}

func hiddenComment(t *testing.T, nsfw bool) *platform.Comment {
	t.Helper()
	for _, c := range allComments(out.DB) {
		if nsfw && c.NSFW && !c.Offensive {
			return c
		}
		if !nsfw && c.Offensive && !c.NSFW {
			return c
		}
	}
	t.Skip("no suitable hidden comment at this scale")
	return nil
}

func TestShadowOverlayGating(t *testing.T) {
	s, srv := newTestServer(t)
	s.RegisterSession("nsfw-tok", Session{Username: "probe1", ShowNSFW: true})
	s.RegisterSession("off-tok", Session{Username: "probe2", ShowOffensive: true})

	nc := hiddenComment(t, true)
	cu := out.DB.URLByID(nc.URLID)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	// The hidden comment must not be RENDERED anonymously; its ID may
	// still leak as a reply's data-parent-id attribute (a dangling
	// reference the crawler tolerates).
	rendered := `data-comment-id="` + nc.ID.String() + `"`
	_, anon := fetch(t, page, "")
	if strings.Contains(anon, rendered) {
		t.Error("NSFW comment visible to anonymous viewer")
	}
	_, authed := fetch(t, page, "nsfw-tok")
	if !strings.Contains(authed, rendered) {
		t.Error("NSFW comment missing for opted-in session")
	}
	// The rendered comment body must carry no NSFW marker (§3.2: "no
	// specific flag or other identifier present in the document body").
	frag, _ := htmlx.Between(authed, nc.ID.String(), "</div>")
	if strings.Contains(strings.ToLower(frag), "nsfw") {
		t.Error("NSFW marker leaked into document body")
	}
	// The NSFW session must NOT see offensive-only comments.
	oc := hiddenComment(t, false)
	ocu := out.DB.URLByID(oc.URLID)
	renderedOff := `data-comment-id="` + oc.ID.String() + `"`
	_, nsfwView := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(ocu.URL), "nsfw-tok")
	if strings.Contains(nsfwView, renderedOff) {
		t.Error("offensive comment visible to NSFW-only session")
	}
	_, offView := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(ocu.URL), "off-tok")
	if !strings.Contains(offView, renderedOff) {
		t.Error("offensive comment missing for offensive-enabled session")
	}
}

func TestCommentPageHiddenMetadata(t *testing.T) {
	_, srv := newTestServer(t)
	var c *platform.Comment
	for _, cand := range allComments(out.DB) {
		if !cand.Hidden() {
			c = cand
			break
		}
	}
	resp, body := fetch(t, srv.URL+"/comment/"+c.ID.String(), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	blob, ok := htmlx.CommentedOutJS(body, "commentAuthor")
	if !ok {
		t.Fatal("commentAuthor blob missing")
	}
	author := out.DB.UserByAuthorID(c.AuthorID)
	if !strings.Contains(blob, author.Username) {
		t.Error("hidden metadata lacks username")
	}
	if !strings.Contains(blob, `"canLogin"`) || !strings.Contains(blob, `"nsfw"`) {
		t.Error("hidden metadata lacks permissions/view filters")
	}
}

func TestCommentPageHiddenCommentGated(t *testing.T) {
	s, srv := newTestServer(t)
	s.RegisterSession("nsfw-tok", Session{ShowNSFW: true})
	nc := hiddenComment(t, true)
	resp, _ := fetch(t, srv.URL+"/comment/"+nc.ID.String(), "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("hidden comment page status = %d for anonymous", resp.StatusCode)
	}
	resp, _ = fetch(t, srv.URL+"/comment/"+nc.ID.String(), "nsfw-tok")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("hidden comment page status = %d for opted-in", resp.StatusCode)
	}
}

func TestCommentPageBadID(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := fetch(t, srv.URL+"/comment/zzz", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("bad id status = %d", resp.StatusCode)
	}
	resp, _ = fetch(t, srv.URL+"/comment/aaaaaaaaaaaaaaaaaaaaaaaa", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d", resp.StatusCode)
	}
}

func TestPerURLRateLimit(t *testing.T) {
	_, srv := newTestServer(t, WithURLRateLimit(3, time.Hour))
	page := srv.URL + "/discussion?url=" + url.QueryEscape(allURLs(out.DB)[0].URL)
	for i := 0; i < 3; i++ {
		resp, _ := fetch(t, page, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d", i, resp.StatusCode)
		}
	}
	resp, _ := fetch(t, page, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("4th request status = %d, want 429", resp.StatusCode)
	}
	// A different URL is unaffected: the limit is per-URL (§3.2).
	other := srv.URL + "/discussion?url=" + url.QueryEscape(allURLs(out.DB)[1].URL)
	resp, _ = fetch(t, other, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("other URL status = %d", resp.StatusCode)
	}
}

func TestRepliesOnCommentPage(t *testing.T) {
	_, srv := newTestServer(t)
	var parent *platform.Comment
	replies := 0
	for _, c := range allComments(out.DB) {
		if c.IsReply() && !c.Hidden() {
			p := out.DB.CommentByID(c.ParentID)
			if p != nil && !p.Hidden() {
				parent = p
				break
			}
		}
	}
	if parent == nil {
		t.Skip("no visible reply pairs")
	}
	for _, c := range out.DB.CommentsOnURL(parent.URLID) {
		if c.ParentID == parent.ID && !c.Hidden() {
			replies++
		}
	}
	_, body := fetch(t, srv.URL+"/comment/"+parent.ID.String(), "")
	got := len(htmlx.FindTags(body, "div")) - 1 // minus the comment itself
	if got != replies {
		t.Errorf("rendered %d replies, want %d", got, replies)
	}
}
