package dissenterweb

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"dissenter/internal/platform"
	"dissenter/internal/urlkit"
)

// Gab Trends (§2.1): the news-aggregation portal Gab deployed in October
// 2019 as the second access path to Dissenter comment threads. The
// /trends page lists the most-discussed URLs; the /discussion/begin
// endpoint accepts a NEW URL submission — "if the URL is new to the
// Dissenter and Gab Trends system, this page contains no comments, but
// allows new users that navigate to it to make comments about this URL".
// Submission is a mutable surface of the simulator: a submitted URL is
// assigned a fresh commenturl-id on the spot and inserted straight into
// the sharded platform store, which is also what makes the §6
// covert-channel observation live — any string becomes an addressable
// comment thread. Voting (/discussion/vote) is the second mutable
// surface; tallies accumulate in the store's sharded vote index. The
// third is the live comment write path (POST /discussion/comment,
// comment.go), whose inserts reorder this page's ranking and therefore
// invalidate every cached trends view.

// handleTrends renders the Gab Trends homepage: the most-commented URLs
// with their titles and comment counts, newest first among ties.
func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r)
	key := trendsKey(sess)
	if body, ok := s.cacheGet(key); ok {
		writeHTML(w, body)
		return
	}
	epoch := s.cache.Epoch(key)
	type entry struct {
		cu    *platform.CommentURL
		count int
	}
	var entries []entry
	for _, cu := range s.db.URLs() {
		count := 0
		for _, c := range s.db.CommentsOnURL(cu.ID) {
			if visible(c, sess) {
				count++
			}
		}
		if count > 0 {
			entries = append(entries, entry{cu, count})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		// Newest first among ties; equal first-seen times (same synth
		// batch) fall back to the URL string for determinism.
		if !entries[i].cu.FirstSeen.Equal(entries[j].cu.FirstSeen) {
			return entries[i].cu.FirstSeen.After(entries[j].cu.FirstSeen)
		}
		return entries[i].cu.URL < entries[j].cu.URL
	})
	if len(entries) > 50 {
		entries = entries[:50]
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Gab Trends</title></head><body>\n")
	b.WriteString("<h1>Trending on Dissenter</h1>\n")
	b.WriteString(`<form action="/discussion/begin" method="get">` +
		`<input name="url" placeholder="Submit any URL"/><input type="submit" value="Dissent"/></form>` + "\n")
	b.WriteString("<ol class=\"trends\">\n")
	for _, e := range entries {
		title := e.cu.Title
		if title == "" {
			title = e.cu.URL
		}
		fmt.Fprintf(&b, `<li class="trend" data-comments="%d"><a href="/discussion?url=%s">%s</a></li>`+"\n",
			e.count, url.QueryEscape(e.cu.URL), html.EscapeString(title))
	}
	b.WriteString("</ol>\n</body></html>\n")
	body := b.String()
	s.cache.PutAt(key, body, epoch)
	writeHTML(w, body)
}

// handleBegin accepts a URL submission and redirects to its comment
// page, minting a commenturl-id and inserting the record into the
// platform store when the URL is new to the system.
func (s *Server) handleBegin(w http.ResponseWriter, r *http.Request) {
	raw := urlkit.Normalize(r.URL.Query().Get("url"))
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	if s.db.URLByString(raw) == nil {
		// No cache invalidation needed: invitation pages for unknown
		// URLs are never cached, SubmitURL fully indexes the record
		// before URLByString can return it, and a zero-comment URL
		// cannot appear in trends listings.
		s.db.SubmitURL(&platform.CommentURL{
			ID:        s.idgen.New(),
			URL:       raw,
			FirstSeen: time.Now().UTC().Truncate(time.Second),
		})
	}
	http.Redirect(w, r, "/discussion?url="+url.QueryEscape(raw), http.StatusFound)
}

// handleVote records an up/down vote for a URL's comment page and
// invalidates its cached rendering.
func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	raw := urlkit.Normalize(r.URL.Query().Get("url"))
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	cu := s.db.URLByString(raw)
	if cu == nil {
		http.NotFound(w, r)
		return
	}
	var ups, downs int
	switch r.URL.Query().Get("dir") {
	case "up":
		ups = 1
	case "down":
		downs = 1
	default:
		http.Error(w, "dir must be up or down", http.StatusBadRequest)
		return
	}
	s.db.Vote(cu.ID, ups, downs)
	s.invalidateSubject(discussionPrefix(raw))
	http.Redirect(w, r, "/discussion?url="+url.QueryEscape(raw), http.StatusFound)
}
