package dissenterweb

import (
	"fmt"
	"html"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"dissenter/internal/ids"
	"dissenter/internal/platform"
)

// Gab Trends (§2.1): the news-aggregation portal Gab deployed in October
// 2019 as the second access path to Dissenter comment threads. The
// /trends page lists the most-discussed URLs; the /discussion/begin
// endpoint accepts a NEW URL submission — "if the URL is new to the
// Dissenter and Gab Trends system, this page contains no comments, but
// allows new users that navigate to it to make comments about this URL".
// Submission is the one mutable surface of the simulator: a submitted
// URL is assigned a fresh commenturl-id on the spot, which is also what
// makes the §6 covert-channel observation live — any string becomes an
// addressable comment thread.

// trendsState holds runtime-submitted URLs, separate from the immutable
// generated DB.
type trendsState struct {
	mu        sync.Mutex
	submitted map[string]*platform.CommentURL
	idgen     *ids.Generator
}

func newTrendsState() *trendsState {
	return &trendsState{
		submitted: map[string]*platform.CommentURL{},
		idgen:     ids.NewGenerator(0xD15C0551),
	}
}

// lookupSubmitted returns a runtime-submitted URL record, or nil.
func (t *trendsState) lookup(raw string) *platform.CommentURL {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.submitted[raw]
}

// submit registers a URL (idempotently) and returns its record.
func (t *trendsState) submit(raw string) *platform.CommentURL {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cu, ok := t.submitted[raw]; ok {
		return cu
	}
	cu := &platform.CommentURL{
		ID:        t.idgen.New(),
		URL:       raw,
		FirstSeen: time.Now().UTC().Truncate(time.Second),
	}
	t.submitted[raw] = cu
	return cu
}

// handleTrends renders the Gab Trends homepage: the most-commented URLs
// with their titles and comment counts, newest first among ties.
func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r)
	type entry struct {
		cu    *platform.CommentURL
		count int
	}
	var entries []entry
	for _, cu := range s.db.URLs {
		count := 0
		for _, c := range s.db.CommentsOnURL(cu.ID) {
			if visible(c, sess) {
				count++
			}
		}
		if count > 0 {
			entries = append(entries, entry{cu, count})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].cu.URL < entries[j].cu.URL
	})
	if len(entries) > 50 {
		entries = entries[:50]
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Gab Trends</title></head><body>\n")
	b.WriteString("<h1>Trending on Dissenter</h1>\n")
	b.WriteString(`<form action="/discussion/begin" method="get">` +
		`<input name="url" placeholder="Submit any URL"/><input type="submit" value="Dissent"/></form>` + "\n")
	b.WriteString("<ol class=\"trends\">\n")
	for _, e := range entries {
		title := e.cu.Title
		if title == "" {
			title = e.cu.URL
		}
		fmt.Fprintf(&b, `<li class="trend" data-comments="%d"><a href="/discussion?url=%s">%s</a></li>`+"\n",
			e.count, url.QueryEscape(e.cu.URL), html.EscapeString(title))
	}
	b.WriteString("</ol>\n</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleBegin accepts a URL submission and redirects to its comment
// page, minting a commenturl-id when the URL is new to the system.
func (s *Server) handleBegin(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("url")
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	if s.db.URLByString(raw) == nil {
		s.trends.submit(raw)
	}
	http.Redirect(w, r, "/discussion?url="+url.QueryEscape(raw), http.StatusFound)
}
