package dissenterweb

import (
	"html"
	"net/http"
	"net/url"
	"time"

	"dissenter/internal/platform"
	"dissenter/internal/respcache"
	"dissenter/internal/urlkit"
)

// Gab Trends (§2.1): the news-aggregation portal Gab deployed in October
// 2019 as the second access path to Dissenter comment threads. The
// /trends page lists the most-discussed URLs; the /discussion/begin
// endpoint accepts a NEW URL submission — "if the URL is new to the
// Dissenter and Gab Trends system, this page contains no comments, but
// allows new users that navigate to it to make comments about this URL".
// Submission is a mutable surface of the simulator: a submitted URL is
// assigned a fresh commenturl-id on the spot and inserted straight into
// the sharded platform store, which is also what makes the §6
// covert-channel observation live — any string becomes an addressable
// comment thread. Voting (/discussion/vote) is the second mutable
// surface; tallies accumulate in the store's sharded vote index. The
// third is the live comment write path (POST /discussion/comment,
// comment.go), whose inserts reorder this page's ranking and therefore
// invalidate every cached trends view.

// handleTrends renders the Gab Trends homepage: the most-commented URLs
// with their titles and comment counts, newest first among ties.
//
// The ranking is served from the store's write-maintained trend index
// (platform.DB.TopTrends): every AddComment already folded itself into
// the per-view top-50 in O(1), so a cache-miss render here is
// O(TrendLimit) — it never scans the URL table or counts a comment
// page, no matter how large the store has grown. That is what keeps
// the portal cheap under the §3.2 moving-target regime, where every
// posted comment invalidates every cached trends view.
func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	sess := s.session(r)
	if s.cache == nil {
		writePage(w, page{simple: s.trendsBody(sess)})
		return
	}
	var kb [16]byte
	key := appendViewKey(append(kb[:0], SubjectTrends...), sess)
	if p, ok := s.cache.GetBytes(key); ok {
		s.respond(w, r, p)
		return
	}
	p, _ := s.cache.GetOrFillRev(string(key), func(rev respcache.Rev) page {
		p := page{simple: s.trendsBody(sess), rev: rev, resp: &respBox{}}
		p.resp.composed(&p)
		return p
	})
	s.respond(w, r, p)
}

func (s *Server) trendsBody(sess Session) string {
	entries := s.db.TopTrends(sess.ShowNSFW, sess.ShowOffensive)
	b := getBuf()
	defer putBuf(b)
	b.WriteString("<!DOCTYPE html><html><head><title>Gab Trends</title></head><body>\n")
	b.WriteString("<h1>Trending on Dissenter</h1>\n")
	b.WriteString(`<form action="/discussion/begin" method="get">` +
		`<input name="url" placeholder="Submit any URL"/><input type="submit" value="Dissent"/></form>` + "\n")
	b.WriteString("<ol class=\"trends\">\n")
	for _, e := range entries {
		b.WriteString(`<li class="trend" data-comments="`)
		writeInt(b, e.Count)
		b.WriteString(s.trendRowFrag(e.URL))
	}
	b.WriteString("</ol>\n</body></html>\n")
	return b.String()
}

// trendRowFrag returns the per-URL remainder of a trends row — the
// query-escaped link and HTML-escaped title after the comment count.
// CommentURL records are immutable, so the fragment is computed once
// per URL that ever trends and memoized; only the count is rendered
// per request.
func (s *Server) trendRowFrag(cu *platform.CommentURL) string {
	return s.trendFrags.get(cu.ID, func() string {
		title := cu.Title
		if title == "" {
			title = cu.URL
		}
		return `"><a href="/discussion?url=` + url.QueryEscape(cu.URL) + `">` +
			html.EscapeString(title) + "</a></li>\n"
	})
}

// handleBegin accepts a URL submission and redirects to its comment
// page, minting a commenturl-id and inserting the record into the
// platform store when the URL is new to the system.
func (s *Server) handleBegin(w http.ResponseWriter, r *http.Request) {
	raw := urlkit.Normalize(r.URL.Query().Get("url"))
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	if s.db.URLByString(raw) == nil {
		// Invitation pages for unknown URLs are never cached, SubmitURL
		// fully indexes the record before URLByString can return it, and
		// a zero-comment URL cannot appear in trends listings — so the
		// only cached rendering a registration can change is the
		// leaderboard, which ranks every registered URL from the moment
		// it exists (a newcomer at net zero can reorder the tail).
		_, inserted := s.db.SubmitURL(&platform.CommentURL{
			ID:        s.idgen.New(),
			URL:       raw,
			FirstSeen: time.Now().UTC().Truncate(time.Second),
		})
		if inserted {
			s.cache.Invalidate(SubjectLeaderboard)
		}
	}
	http.Redirect(w, r, "/discussion?url="+url.QueryEscape(raw), http.StatusFound)
}

// handleVote records an up/down vote for a URL's comment page and
// refreshes the two cached renderings the tally appears in: every live
// session view of the address's discussion page is PATCHED in place —
// the vote span is two integers, so nothing re-renders and the page's
// escaped HTML survives (refreshDiscussion) — and the leaderboard is
// invalidated by exact key (the tally moved the ranking).
func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	raw := urlkit.Normalize(r.URL.Query().Get("url"))
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	cu := s.db.URLByString(raw)
	if cu == nil {
		http.NotFound(w, r)
		return
	}
	var ups, downs int
	switch r.URL.Query().Get("dir") {
	case "up":
		ups = 1
	case "down":
		downs = 1
	default:
		http.Error(w, "dir must be up or down", http.StatusBadRequest)
		return
	}
	s.db.Vote(cu.ID, ups, downs)
	s.refreshDiscussion(raw, cu.ID)
	s.cache.Invalidate(SubjectLeaderboard)
	http.Redirect(w, r, "/discussion?url="+url.QueryEscape(raw), http.StatusFound)
}
