package dissenterweb

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/urlkit"
)

// The live comment write path. The paper's measurement campaign ran
// against a growing platform — comments appeared between crawl passes
// (§3.2), which is what made the differential NSFW/offensive labeling a
// moving-target problem. POST /discussion/comment is the simulator-side
// source of that growth: a session-authenticated write that mints a
// comment-id, inserts through platform.DB.AddComment, and invalidates
// every cached rendering whose content the new comment changes.
//
// Cache-coherence contract — exactly three subjects, every session
// view of each, by exact key:
//
//	disc|<url>|    PATCHED in place: each live view entry swaps in the
//	               fragment view's grown comment stream (one appended
//	               pre-escaped fragment) and fresh count — the page's
//	               escaped HTML is never discarded. The patch advances
//	               the entry's generation stamp and resets its composed
//	               response, so the next serve re-composes (and
//	               re-gzips) under a NEW ETag — a validator from before
//	               the post can never 304. Views with no live entry
//	               fall back to exact-key invalidation, whose tombstone
//	               discards any fill racing the write
//	               (refreshDiscussion).
//	home|<author>| dropped: the posting author's profile listing
//	               changed shape.
//	trends|        dropped: comment counts order the ranking.
//
// plus, only when the post registers a never-seen URL, the leaderboard
// (`leader|`): a just-registered URL enters the net-vote ranking at
// its baseline, which can reorder the tail. Nothing else is touched:
// other discussions, other profiles, and single-comment pages (which
// are rendered uncached) keep their entries — comments do not move
// vote tallies, so an ordinary post never drops the leaderboard.
// Coherence runs after AddComment completes (the fragment view is
// maintained inside AddComment's event dispatch), so a reader that
// rendered the pre-insert store has its stale fill discarded, and any
// render or patch that starts afterwards sees the comment.

// handlePostComment accepts a session-authenticated comment submission:
// form fields url (required), text (required), parent (optional
// comment-id for replies), and nsfw / offensive (optional boolean
// labels, the author-applied and platform-applied shadow flags).
// Posting to a URL the platform has never seen first registers it, the
// §2.1 "allows new users ... to make comments" behaviour. The response
// carries the minted comment-id as a data-comment-id attribute.
func (s *Server) handlePostComment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	raw := urlkit.Normalize(r.PostFormValue("url"))
	text := r.PostFormValue("text")
	if raw == "" || text == "" {
		http.Error(w, "url and text required", http.StatusBadRequest)
		return
	}
	sess := s.session(r)
	if sess.Username == "" {
		http.Error(w, "authentication required", http.StatusUnauthorized)
		return
	}
	author := s.db.UserByUsername(sess.Username)
	if author == nil || !author.HasDissenter {
		http.Error(w, "no Dissenter account for session", http.StatusForbidden)
		return
	}
	// Writes draw from the same per-URL budget as reads: the real
	// platform throttled by request, not by method (§3.2).
	if !s.rateLimit(w, "discussion:", raw) {
		return
	}
	cu := s.db.URLByString(raw)
	if cu == nil {
		var inserted bool
		cu, inserted = s.db.SubmitURL(&platform.CommentURL{
			ID:        s.idgen.New(),
			URL:       raw,
			FirstSeen: time.Now().UTC().Truncate(time.Second),
		})
		if inserted {
			s.cache.Invalidate(SubjectLeaderboard)
		}
	}
	var parentID ids.ObjectID
	if p := r.PostFormValue("parent"); p != "" {
		pid, err := ids.Parse(p)
		if err != nil {
			http.Error(w, "bad parent id", http.StatusBadRequest)
			return
		}
		parent := s.db.CommentByID(pid)
		if parent == nil || parent.URLID != cu.ID {
			http.Error(w, "parent not on this page", http.StatusBadRequest)
			return
		}
		parentID = pid
	}
	id := s.idgen.New()
	s.db.AddComment(&platform.Comment{
		ID:        id,
		URLID:     cu.ID,
		AuthorID:  author.AuthorID,
		ParentID:  parentID,
		Text:      text,
		CreatedAt: id.Time(),
		NSFW:      formBool(r, "nsfw"),
		Offensive: formBool(r, "offensive"),
	})
	s.refreshDiscussion(raw, cu.ID)
	s.invalidateSubject(HomeSubject(author.Username))
	s.invalidateSubject(SubjectTrends)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<div class="posted" data-comment-id="%s"></div>`+"\n", id)
}

// formBool interprets a submitted flag field ("1", "true", "on").
func formBool(r *http.Request, field string) bool {
	switch strings.ToLower(r.PostFormValue(field)) {
	case "1", "true", "on", "yes":
		return true
	}
	return false
}
