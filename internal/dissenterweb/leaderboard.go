package dissenterweb

import (
	"net/http"

	"dissenter/internal/respcache"
)

// The vote leaderboard: the most net-upvoted comment pages, Figure 5's
// ordering, served from the store's write-maintained vote index
// (platform.DB.Leaderboard) — every vote already folded itself into
// the exact top-LeaderLimit in O(log #URLs), so a cache-miss render
// here is O(LeaderLimit) no matter how large the store has grown.
//
// Net votes do not depend on the session's shadow-overlay settings (a
// vote is a vote, there is no hidden-vote overlay), so unlike the
// discussion, home, and trends pages the leaderboard renders
// identically for every session and is cached under ONE exact key with
// no view suffix. Invalidation: /discussion/vote drops the key after
// the tally lands (the vote moved the ranking), and the URL
// registration paths (/discussion/begin, a POST /discussion/comment to
// a never-seen address) drop it too — a just-registered URL enters the
// ranking at its baseline net, which can reorder the tail. TTL
// backstops out-of-band store writes, as everywhere. The key itself is
// SubjectLeaderboard (cachekeys.go), where every cache subject lives.

// leaderKey is SubjectLeaderboard pre-converted for the GetBytes probe.
var leaderKey = []byte(SubjectLeaderboard)

// handleLeaderboard renders the net-vote leaderboard.
func (s *Server) handleLeaderboard(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writePage(w, page{simple: s.leaderboardBody()})
		return
	}
	// Same probe-then-fill shape as the keyed handlers; GetBytes leaves
	// miss accounting to the GetOrFillRev fall-through.
	if p, ok := s.cache.GetBytes(leaderKey); ok {
		s.respond(w, r, p)
		return
	}
	p, _ := s.cache.GetOrFillRev(SubjectLeaderboard, func(rev respcache.Rev) page {
		p := page{simple: s.leaderboardBody(), rev: rev, resp: &respBox{}}
		p.resp.composed(&p)
		return p
	})
	s.respond(w, r, p)
}

func (s *Server) leaderboardBody() string {
	entries := s.db.Leaderboard()
	b := getBuf()
	defer putBuf(b)
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter Leaderboard</title></head><body>\n")
	b.WriteString("<h1>Top discussions by net votes</h1>\n")
	b.WriteString("<ol class=\"leaderboard\">\n")
	for _, e := range entries {
		b.WriteString(`<li class="leader" data-net="`)
		writeInt(b, e.Net())
		b.WriteString(`" data-up="`)
		writeInt(b, e.Ups)
		b.WriteString(`" data-down="`)
		writeInt(b, e.Downs)
		// trendRowFrag closes the open attribute and renders the
		// link+title remainder; CommentURL records are immutable, so the
		// memoized fragment is shared with the trends page.
		b.WriteString(s.trendRowFrag(e.URL))
	}
	b.WriteString("</ol>\n</body></html>\n")
	return b.String()
}
