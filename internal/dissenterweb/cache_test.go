package dissenterweb

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"dissenter/internal/htmlx"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

// newIsolatedServer builds a Server over a freshly generated private DB,
// for tests that mutate the store (votes, submissions) — serve-time
// writes must never leak into the shared out fixture and order-couple
// the suite.
func newIsolatedServer(t *testing.T, opts ...Option) (*Server, *httptest.Server, *synth.Output) {
	t.Helper()
	priv := synth.Generate(synth.NewConfig(1.0/512, 11))
	if len(opts) == 0 {
		opts = []Option{WithURLRateLimit(0, 0)}
	}
	s := NewServer(priv.DB, opts...)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv, priv
}

// busyURL returns a URL in o with at least one visible comment.
func busyURL(t *testing.T, o *synth.Output) *platform.CommentURL {
	t.Helper()
	for _, cu := range allURLs(o.DB) {
		for _, c := range o.DB.CommentsOnURL(cu.ID) {
			if !c.Hidden() {
				return cu
			}
		}
	}
	t.Fatal("no URL with visible comments")
	return nil
}

func TestResponseCacheServesRepeatFetches(t *testing.T) {
	s, srv := newTestServer(t)
	cu := busyURL(t, out)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	_, first := fetch(t, page, "")
	h0, _ := s.CacheStats()
	_, second := fetch(t, page, "")
	h1, _ := s.CacheStats()
	if second != first {
		t.Error("cached fetch rendered a different body")
	}
	if h1 != h0+1 {
		t.Errorf("cache hits went %d -> %d, want one new hit", h0, h1)
	}
}

func TestVoteInvalidatesDiscussionCache(t *testing.T) {
	_, srv, priv := newIsolatedServer(t)
	cu := busyURL(t, priv)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	upsOf := func(body string) int {
		tagged, ok := htmlx.Attr(body, "data-up")
		if !ok {
			t.Fatalf("no votes span in %q", body[:120])
		}
		n, err := strconv.Atoi(tagged)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	_, before := fetch(t, page, "")
	// Prime the cache, then vote: the cached rendering must not survive.
	resp, _ := fetch(t, srv.URL+"/discussion/vote?url="+url.QueryEscape(cu.URL)+"&dir=up", "")
	if resp.StatusCode != http.StatusOK { // redirect followed to the page
		t.Fatalf("vote status = %d", resp.StatusCode)
	}
	_, after := fetch(t, page, "")
	if got, want := upsOf(after), upsOf(before)+1; got != want {
		t.Errorf("ups after vote = %d, want %d (stale cache?)", got, want)
	}
}

func TestVoteValidation(t *testing.T) {
	_, srv := newTestServer(t)
	cu := busyURL(t, out)
	if resp, _ := fetch(t, srv.URL+"/discussion/vote?url="+url.QueryEscape(cu.URL)+"&dir=sideways", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad dir: status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := fetch(t, srv.URL+"/discussion/vote?url=https%3A%2F%2Fnever.submitted%2F&dir=up", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown url: status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := fetch(t, srv.URL+"/discussion/vote?dir=up", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing url: status = %d, want 400", resp.StatusCode)
	}
}

func TestCacheDoesNotLeakShadowOverlay(t *testing.T) {
	// A session that sees the shadow overlay must never share cache
	// entries with one that does not — even for the same URL.
	s, srv := newTestServer(t)
	s.RegisterSession("nsfw-cache-probe", Session{ShowNSFW: true, ShowOffensive: true})

	var hidden *platform.Comment
	for _, c := range allComments(out.DB) {
		if c.Hidden() {
			hidden = c
			break
		}
	}
	if hidden == nil {
		t.Skip("fixture has no hidden comments")
	}
	cu := out.DB.URLByID(hidden.URLID)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	// Warm the opted-in rendering first, so a key collision would serve
	// the overlay to the anonymous client below.
	_, optedIn := fetch(t, page, "nsfw-cache-probe")
	_, anon := fetch(t, page, "")
	if anon == optedIn {
		t.Fatal("anonymous fetch served the opted-in rendering")
	}
	if countTag(optedIn, hidden.ID.String()) == 0 {
		t.Error("opted-in session missing its hidden comment")
	}
	if countTag(anon, hidden.ID.String()) != 0 {
		t.Error("cached shadow overlay leaked to anonymous session")
	}
}

func countTag(body, commentID string) int {
	n := 0
	for _, div := range htmlx.FindTags(body, "div") {
		if id, ok := htmlx.Attr(div.Raw, "data-comment-id"); ok && id == commentID {
			n++
		}
	}
	return n
}

func TestDisabledCacheStillServes(t *testing.T) {
	s, srv := newTestServer(t, WithURLRateLimit(0, 0), WithResponseCache(0, 0))
	cu := busyURL(t, out)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)
	_, first := fetch(t, page, "")
	_, second := fetch(t, page, "")
	if first != second {
		t.Error("renders diverged without cache")
	}
	if h, m := s.CacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache reported stats %d/%d", h, m)
	}
}
