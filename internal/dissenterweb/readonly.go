package dissenterweb

import (
	"dissenter/internal/platform"
)

// Replica serving: a Server normally learns about store writes because
// it performs them — each mutating handler runs the matching cache
// coherence (refreshDiscussion, invalidateSubject, SubjectLeaderboard). On a
// read replica the writes arrive from below instead, replayed into the
// store by the replication stream, and the handlers never run. Two
// pieces close the loop: ReadOnly() turns the mutating endpoints away
// (the primary is where writes belong), and EventInvalidator() is a
// platform.View that watches the replayed events and runs exactly the
// coherence the suppressed handlers would have — registered through
// DB.RegisterView, the same seam the store's own materialized views
// attach through.

// ReadOnly makes the server refuse its mutating endpoints
// (/discussion/begin, /discussion/vote, /discussion/comment) with
// 403 Forbidden. Read paths are unaffected.
func ReadOnly() Option {
	return func(s *Server) { s.readOnly = true }
}

// EventInvalidator returns a platform.View that maintains this
// server's response-cache coherence from replayed events. Register it
// on the server's DB (db.RegisterView(srv.EventInvalidator())) when
// the store is written by replication rather than by this server's
// handlers. The coherence per event mirrors the write handlers'
// contract exactly:
//
//	CommentAdded  patch/drop every view of the URL's discussion page,
//	              drop the author's home views, drop the trends views
//	              (comment.go's contract).
//	VoteCast      patch every view of the discussion page, drop the
//	              leaderboard (handleVote's contract).
//	URLSubmitted  drop the leaderboard — a just-registered URL enters
//	              the net-vote ranking at its baseline
//	              (handleBegin's contract).
//	UserAdded,    nothing: no cached page lists users or follow
//	FollowAdded   edges (home pages are keyed by username and a new
//	              user has no cached page yet).
func (s *Server) EventInvalidator() platform.View {
	return eventInvalidator{s}
}

type eventInvalidator struct{ s *Server }

func (eventInvalidator) Name() string { return "web-invalidator" }

// Apply runs after the store's base indexes and fragment views already
// reflect the event (dispatch order), so a patch or a post-tombstone
// refill always renders post-write state.
func (iv eventInvalidator) Apply(db *platform.DB, ev platform.Event) {
	s := iv.s
	switch e := ev.(type) {
	case platform.CommentAdded:
		if cu := db.URLByID(e.Comment.URLID); cu != nil {
			s.refreshDiscussion(cu.URL, cu.ID)
		}
		if author := db.UserByAuthorID(e.Comment.AuthorID); author != nil {
			s.invalidateSubject(HomeSubject(author.Username))
		}
		s.invalidateSubject(SubjectTrends)
	case platform.VoteCast:
		if cu := db.URLByID(e.URLID); cu != nil {
			s.refreshDiscussion(cu.URL, cu.ID)
		}
		s.cache.Invalidate(SubjectLeaderboard)
	case platform.URLSubmitted:
		s.cache.Invalidate(SubjectLeaderboard)
	}
}

// Rebuild is the bulk-catch-up hook; a cache derives nothing — entries
// refill lazily from the store on each miss. Register the invalidator
// on a server built over the SAME store it watches and before that
// store takes replicated writes (a replica re-bootstrap builds a fresh
// Server over the fresh DB, so no stale entries can survive a swap).
func (eventInvalidator) Rebuild(db *platform.DB) {}
