package dissenterweb

import (
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"

	"dissenter/internal/respcache"
)

// The thin response layer for cached pages: cache hits are
// byte-shoveling, not rendering. Each cached generation carries a
// respBox that lazily publishes its composed form (final body bytes +
// write-time gzip variant + strong ETag, see respcache.Compose); a hit
// negotiates Accept-Encoding, answers If-None-Match revalidation with
// a bodyless 304, and writes headers by assigning pre-built []string
// values into the header map — zero allocations end to end. The
// helpers below (sessionToken, queryValue) exist because the stdlib
// conveniences they replace (Request.Cookie, URL.Query) allocate on
// every call, which is the difference between 0 and ~6 allocs per hit.

// Shared single-value header slices, assigned directly into http.Header
// maps on the hit path (Header.Set would allocate a []string per call).
// Immutable.
var (
	hdrVaryAE = []string{"Accept-Encoding"}
	hdrCTHTML = []string{"text/html; charset=utf-8"}
	hdrCEGzip = []string{"gzip"}
)

// respBox carries the lazily-published composed response of ONE
// content generation. The box pointer is shared between the cached
// entry and every page copy handed to readers, so whichever request
// composes first publishes for all. A write that patches the entry
// (refreshDiscussion via UpdateRev) swaps in a fresh empty box along
// with the new Rev under the shard lock — the generation changed, so
// the old composed bytes become unreachable from the cache atomically
// with the content change, and composing (gzip included) never runs
// under the lock.
type respBox struct {
	mu sync.Mutex
	c  atomic.Pointer[respcache.Composed]
}

// composed returns the generation's composed form, building it at most
// once. p is the caller's copy of the entry; it is the same generation
// as the box, because UpdateRev replaces box and parts under one shard
// lock acquisition.
func (b *respBox) composed(p *page) *respcache.Composed {
	if c := b.c.Load(); c != nil {
		return c
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.c.Load(); c != nil {
		return c
	}
	c := respcache.Compose(composeBody(p), p.rev)
	b.c.Store(c)
	return c
}

// composeBody flattens a page entry into the exact bytes writePage
// streams — the oracle tests pin the two paths byte-identical.
func composeBody(p *page) []byte {
	if p.head == "" {
		return []byte(p.simple)
	}
	b := make([]byte, 0, len(p.head)+len(p.stream)+96)
	b = append(b, p.head...)
	b = appendVoteSpan(b, p.ups, p.downs, p.count)
	b = append(b, p.stream...)
	b = append(b, "</body></html>\n"...)
	return b
}

// respond serves one cache entry through the composed-response layer.
// Entries from a disabled cache (no resp box) fall back to the
// streaming writePage path: with nothing cached there is no stable
// generation to validate or pre-compress against.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, p page) {
	if p.resp == nil {
		writePage(w, p)
		return
	}
	c := p.resp.composed(&p)
	h := w.Header()
	h["Etag"] = c.ETagHdr
	h["Vary"] = hdrVaryAE
	if m := r.Header["If-None-Match"]; len(m) > 0 && etagMatch(m[0], c.ETag) {
		// The validator matches the currently cached generation — by the
		// Rev construction (respcache), a generation whose epoch was
		// invalidated or whose entry was patched can never produce this
		// equality, so a 304 is always safe here.
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = hdrCTHTML
	if c.Gzip != nil && acceptsGzip(r) {
		h["Content-Encoding"] = hdrCEGzip
		h["Content-Length"] = c.GzipLenHdr
		w.Write(c.Gzip)
		return
	}
	h["Content-Length"] = c.BodyLenHdr
	w.Write(c.Body)
}

// etagMatch reports whether the If-None-Match header value matches the
// strong validator etag: a comma-separated list of entity-tags or the
// "*" wildcard. Weak validators (W/ prefix) never match — composed
// entries are byte-exact, so only strong comparison is sound. Operates
// on substrings only; never allocates.
func etagMatch(header, etag string) bool {
	for header != "" {
		header = strings.TrimLeft(header, " \t,")
		if header == "" {
			return false
		}
		var tok string
		if i := strings.IndexByte(header, ','); i >= 0 {
			tok, header = header[:i], header[i+1:]
		} else {
			tok, header = header, ""
		}
		tok = strings.TrimRight(tok, " \t")
		if tok == "*" || tok == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request negotiates the gzip variant.
// A token scan rather than a full q-value parse: the only widely sent
// forms are "gzip" bare or with a q attribute, and an explicit q=0
// (the one way the scan could over-accept) is checked for.
func acceptsGzip(r *http.Request) bool {
	for _, v := range r.Header["Accept-Encoding"] {
		i := strings.Index(v, "gzip")
		if i < 0 {
			continue
		}
		rest := v[i+len("gzip"):]
		if strings.HasPrefix(rest, ";q=0") && !strings.HasPrefix(rest, ";q=0.") {
			continue
		}
		return true
	}
	return false
}

// sessionToken extracts the "session" cookie's value without
// Request.Cookie's per-call parse allocations. Tokens are issued by
// RegisterSession and sent back verbatim, so a substring scan of the
// Cookie header (with optional double-quote unwrapping, as Cookie
// performs) is exact.
func sessionToken(r *http.Request) string {
	for _, line := range r.Header["Cookie"] {
		for len(line) > 0 {
			var part string
			if i := strings.IndexByte(line, ';'); i >= 0 {
				part, line = line[:i], line[i+1:]
			} else {
				part, line = line, ""
			}
			part = strings.TrimLeft(part, " ")
			if strings.HasPrefix(part, "session=") {
				v := part[len("session="):]
				if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
					v = v[1 : len(v)-1]
				}
				return v
			}
		}
	}
	return ""
}

// queryValue returns the first value of name in rawQuery. Equivalent
// to r.URL.Query().Get(name) for well-formed queries, but it only
// allocates when the matched value actually contains an escape ('%'
// or '+'); the common already-normal ?url=https://... costs nothing.
// Malformed escapes fall back to the raw substring, which simply
// becomes a URL the store has never seen.
func queryValue(rawQuery, name string) string {
	for q := rawQuery; q != ""; {
		var pair string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, ""
		}
		eq := strings.IndexByte(pair, '=')
		if eq < 0 || pair[:eq] != name {
			continue
		}
		v := pair[eq+1:]
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v
		}
		if dec, err := url.QueryUnescape(v); err == nil {
			return dec
		}
		return v
	}
	return ""
}
