package dissenterweb

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"dissenter/internal/htmlx"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

// registerPoster issues a posting session for an active Dissenter user
// of the fixture and returns that user.
func registerPoster(t *testing.T, s *Server, o *synth.Output, token string) *platform.User {
	t.Helper()
	users := o.DB.ActiveUsers()
	if len(users) == 0 {
		t.Fatal("fixture has no active users")
	}
	u := users[0]
	s.RegisterSession(token, Session{Username: u.Username})
	return u
}

// postComment submits the form to POST /discussion/comment.
func postComment(t *testing.T, srv *httptest.Server, token string, form url.Values) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/discussion/comment", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if token != "" {
		req.AddCookie(&http.Cookie{Name: "session", Value: token})
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// mustPost posts and returns the minted comment-id.
func mustPost(t *testing.T, srv *httptest.Server, token string, form url.Values) string {
	t.Helper()
	resp, body := postComment(t, srv, token, form)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post status = %d, body %q", resp.StatusCode, body)
	}
	id, ok := htmlx.Attr(body, "data-comment-id")
	if !ok || len(id) != 24 {
		t.Fatalf("post response lacks comment-id: %q", body)
	}
	return id
}

// urlNotCommentedBy finds a URL with visible comments that the author
// has not commented on, so a post there changes their home listing.
func urlNotCommentedBy(t *testing.T, o *synth.Output, author *platform.User) *platform.CommentURL {
	t.Helper()
	mine := map[string]bool{}
	for _, cu := range o.DB.URLsCommentedBy(author.AuthorID) {
		mine[cu.URL] = true
	}
	for _, cu := range allURLs(o.DB) {
		if len(o.DB.CommentsOnURL(cu.ID)) > 0 && !mine[cu.URL] {
			return cu
		}
	}
	t.Fatal("no suitable target URL")
	return nil
}

func TestPostCommentVisibleOnNextRender(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	poster := registerPoster(t, s, priv, "poster-tok")
	cu := urlNotCommentedBy(t, priv, poster)
	discussion := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)
	home := srv.URL + "/user/" + poster.Username

	// Warm all three renderings so stale cache entries would betray a
	// dropped invalidation (default TTL far exceeds the test).
	_, before := fetch(t, discussion, "")
	fetch(t, home, "")
	fetch(t, srv.URL+"/trends", "")

	id := mustPost(t, srv, "poster-tok", url.Values{
		"url": {cu.URL}, "text": {"a live comment between crawl passes"},
	})

	// The very next render of the discussion page must carry the comment.
	_, after := fetch(t, discussion, "")
	if !strings.Contains(after, `data-comment-id="`+id+`"`) {
		t.Error("posted comment missing from next discussion render (stale cache?)")
	}
	if strings.Contains(before, `data-comment-id="`+id+`"`) {
		t.Error("comment present before posting?")
	}
	// The author's home page must list the newly commented URL.
	_, homeBody := fetch(t, home, "")
	if !strings.Contains(homeBody, url.QueryEscape(cu.URL)) {
		t.Error("author home page missing newly commented URL (stale cache?)")
	}
	// The comment resolves on its single-comment page.
	resp, _ := fetch(t, srv.URL+"/comment/"+id, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("single-comment page status = %d", resp.StatusCode)
	}
}

func TestPostCommentMovesTrendsRanking(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerPoster(t, s, priv, "poster-tok")
	cu := busyURL(t, priv)

	// Warm the trends cache, then post enough comments to make cu the
	// top trend. If the trends invalidation were dropped, the cached
	// pre-post ranking would still be served.
	_, before := fetch(t, srv.URL+"/trends", "")
	top := 0
	for _, other := range allURLs(priv.DB) {
		n := 0
		for _, c := range priv.DB.CommentsOnURL(other.ID) {
			if !c.Hidden() {
				n++
			}
		}
		if n > top {
			top = n
		}
	}
	have := 0
	for _, c := range priv.DB.CommentsOnURL(cu.ID) {
		if !c.Hidden() {
			have++
		}
	}
	for i := have; i <= top; i++ {
		mustPost(t, srv, "poster-tok", url.Values{
			"url": {cu.URL}, "text": {fmt.Sprintf("pile-on %d", i)},
		})
	}
	_, after := fetch(t, srv.URL+"/trends", "")
	items := htmlx.FindTags(after, "li")
	if len(items) == 0 {
		t.Fatal("no trends entries")
	}
	if !strings.Contains(items[0].Text, url.QueryEscape(cu.URL)) {
		t.Errorf("top trend is not the piled-on URL:\n%s", items[0].Text)
	}
	if after == before {
		t.Error("trends page unchanged after ranking flip (stale cache?)")
	}
}

// TestPostCommentCoherenceContract pins the cache-coherence contract:
// posting PATCHES every live session view of the discussion page in
// place (the entry survives and carries the new comment), drops every
// view of the author's home page and of trends — and touches nothing
// else.
func TestPostCommentCoherenceContract(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	poster := registerPoster(t, s, priv, "poster-tok")
	target := urlNotCommentedBy(t, priv, poster)

	// A control discussion and a control profile that must survive.
	var other *platform.CommentURL
	for _, cu := range allURLs(priv.DB) {
		if cu.ID != target.ID && len(priv.DB.CommentsOnURL(cu.ID)) > 0 {
			other = cu
			break
		}
	}
	var otherUser *platform.User
	for _, u := range priv.DB.ActiveUsers() {
		if u.Username != poster.Username {
			otherUser = u
			break
		}
	}
	if other == nil || otherUser == nil {
		t.Fatal("fixture too small for control subjects")
	}

	// One session per view key.
	viewTokens := map[string]string{"00": "", "10": "v10", "01": "v01", "11": "v11"}
	s.RegisterSession("v10", Session{ShowNSFW: true})
	s.RegisterSession("v01", Session{ShowOffensive: true})
	s.RegisterSession("v11", Session{ShowNSFW: true, ShowOffensive: true})

	pages := []string{
		srv.URL + "/discussion?url=" + url.QueryEscape(target.URL),
		srv.URL + "/discussion?url=" + url.QueryEscape(other.URL),
		srv.URL + "/user/" + poster.Username,
		srv.URL + "/user/" + otherUser.Username,
		srv.URL + "/trends",
	}
	for _, page := range pages {
		for _, tok := range viewTokens {
			fetch(t, page, tok)
		}
	}

	const patched, dropped, kept = "patched", "dropped", "kept"
	subjects := []struct {
		prefix string
		want   string
	}{
		{DiscussionSubject(target.URL), patched},
		{HomeSubject(poster.Username), dropped},
		{SubjectTrends, dropped},
		{DiscussionSubject(other.URL), kept},
		{HomeSubject(otherUser.Username), kept},
	}
	// Every view of every subject must be warm before the post.
	for _, sub := range subjects {
		for vk := range viewTokens {
			if _, ok := s.cacheGet(sub.prefix + vk); !ok {
				t.Fatalf("key %q not warmed", sub.prefix+vk)
			}
		}
	}

	id := mustPost(t, srv, "poster-tok", url.Values{
		"url": {target.URL}, "text": {"coherence probe"},
	})

	for _, sub := range subjects {
		for vk := range viewTokens {
			key := sub.prefix + vk
			p, ok := s.cacheGet(key)
			switch sub.want {
			case dropped:
				if ok {
					t.Errorf("key %q survived the post (dropped invalidation)", key)
				}
			case kept:
				if !ok {
					t.Errorf("key %q was evicted by an unrelated post", key)
				}
			case patched:
				if !ok {
					t.Errorf("key %q was discarded; the post should have patched it in place", key)
					continue
				}
				// The surviving entry must already carry the new comment
				// (it is plain, so every view shows it) and the grown count.
				if !strings.Contains(string(p.stream), `data-comment-id="`+id+`"`) {
					t.Errorf("key %q was not patched with the posted comment", key)
				}
			}
		}
	}
}

func TestPostCommentParentReply(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerPoster(t, s, priv, "poster-tok")
	cu := busyURL(t, priv)

	parent := mustPost(t, srv, "poster-tok", url.Values{
		"url": {cu.URL}, "text": {"parent comment"},
	})
	reply := mustPost(t, srv, "poster-tok", url.Values{
		"url": {cu.URL}, "text": {"the reply"}, "parent": {parent},
	})
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(cu.URL), "")
	want := `data-comment-id="` + reply + `" data-author-id`
	if !strings.Contains(body, want) {
		t.Fatal("reply missing from discussion page")
	}
	frag, ok := htmlx.Between(body, reply, "</div>")
	if !ok || !strings.Contains(frag, `data-parent-id="`+parent+`"`) {
		t.Errorf("reply does not carry its parent id: %q", frag)
	}

	// A parent on a different page is rejected.
	var elsewhere *platform.Comment
	for _, c := range allComments(priv.DB) {
		if c.URLID != cu.ID {
			elsewhere = c
			break
		}
	}
	resp, _ := postComment(t, srv, "poster-tok", url.Values{
		"url": {cu.URL}, "text": {"cross-page reply"}, "parent": {elsewhere.ID.String()},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("cross-page parent status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postComment(t, srv, "poster-tok", url.Values{
		"url": {cu.URL}, "text": {"bad parent"}, "parent": {"zzz"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed parent status = %d, want 400", resp.StatusCode)
	}
}

func TestPostCommentShadowFlagsFromSession(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerPoster(t, s, priv, "poster-tok")
	s.RegisterSession("nsfw-view", Session{ShowNSFW: true})
	cu := busyURL(t, priv)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	id := mustPost(t, srv, "poster-tok", url.Values{
		"url": {cu.URL}, "text": {"shadow content"}, "nsfw": {"1"},
	})
	rendered := `data-comment-id="` + id + `"`
	_, anon := fetch(t, page, "")
	if strings.Contains(anon, rendered) {
		t.Error("freshly posted NSFW comment visible anonymously")
	}
	_, opted := fetch(t, page, "nsfw-view")
	if !strings.Contains(opted, rendered) {
		t.Error("freshly posted NSFW comment missing for opted-in session")
	}
	resp, _ := fetch(t, srv.URL+"/comment/"+id, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("hidden comment page status = %d anonymously, want 404", resp.StatusCode)
	}
}

func TestPostCommentAuthAndValidation(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerPoster(t, s, priv, "poster-tok")
	s.RegisterSession("ghost-tok", Session{Username: "no-such-account-ever"})
	cu := busyURL(t, priv)
	form := url.Values{"url": {cu.URL}, "text": {"hello"}}

	if resp, _ := postComment(t, srv, "", form); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("anonymous post status = %d, want 401", resp.StatusCode)
	}
	if resp, _ := postComment(t, srv, "never-registered", form); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown token status = %d, want 401", resp.StatusCode)
	}
	if resp, _ := postComment(t, srv, "ghost-tok", form); resp.StatusCode != http.StatusForbidden {
		t.Errorf("ghost account status = %d, want 403", resp.StatusCode)
	}
	if resp, _ := postComment(t, srv, "poster-tok", url.Values{"text": {"x"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing url status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postComment(t, srv, "poster-tok", url.Values{"url": {cu.URL}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing text status = %d, want 400", resp.StatusCode)
	}
	resp, _ := fetch(t, srv.URL+"/discussion/comment", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestPostCommentMintsUnknownURL(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	poster := registerPoster(t, s, priv, "poster-tok")
	novel := "https://fresh.example/live/thread-1"

	id := mustPost(t, srv, "poster-tok", url.Values{
		"url": {novel}, "text": {"first!"},
	})
	cu := priv.DB.URLByString(novel)
	if cu == nil {
		t.Fatal("posting to an unknown URL did not register it")
	}
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	if !strings.Contains(body, `data-comment-id="`+id+`"`) {
		t.Error("comment missing from freshly minted page")
	}
	_, home := fetch(t, srv.URL+"/user/"+poster.Username, "")
	if !strings.Contains(home, url.QueryEscape(novel)) {
		t.Error("author home page missing the fresh URL")
	}
}

func TestPostCommentSharesReadRateLimit(t *testing.T) {
	s, srv, priv := newIsolatedServer(t, WithURLRateLimit(3, time.Hour))
	registerPoster(t, s, priv, "poster-tok")
	cu := busyURL(t, priv)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	fetch(t, page, "")
	fetch(t, page, "")
	mustPost(t, srv, "poster-tok", url.Values{"url": {cu.URL}, "text": {"third hit"}})
	if resp, _ := fetch(t, page, ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("4th request (read) status = %d, want 429: writes must share the budget", resp.StatusCode)
	}
	if resp, _ := postComment(t, srv, "poster-tok", url.Values{"url": {cu.URL}, "text": {"over"}}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("5th request (write) status = %d, want 429", resp.StatusCode)
	}
}

// TestPostCommentConcurrentPostersAndReaders races live writes against
// cached reads on one URL; the final render must agree with the store.
func TestPostCommentConcurrentPostersAndReaders(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerPoster(t, s, priv, "poster-tok")
	cu := busyURL(t, priv)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	const posters, perPoster, readers = 4, 12, 4
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				// t.Errorf, not mustPost: Fatal must stay on the test
				// goroutine.
				resp, body := postComment(t, srv, "poster-tok", url.Values{
					"url": {cu.URL}, "text": {fmt.Sprintf("poster %d comment %d", p, i)},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("racing post status = %d, body %q", resp.StatusCode, body)
					return
				}
			}
		}(p)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3*perPoster; i++ {
				fetch(t, page, "")
			}
		}()
	}
	wg.Wait()

	visible := 0
	for _, c := range priv.DB.CommentsOnURL(cu.ID) {
		if !c.Hidden() {
			visible++
		}
	}
	_, body := fetch(t, page, "")
	rendered := 0
	for _, div := range htmlx.FindTags(body, "div") {
		if _, ok := htmlx.Attr(div.Raw, "data-comment-id"); ok {
			rendered++
		}
	}
	if rendered != visible {
		t.Errorf("final render shows %d comments, store holds %d visible (stale cache survived the race)", rendered, visible)
	}
}

func TestRateLimitMapEvictsExpiredWindows(t *testing.T) {
	window := 50 * time.Millisecond
	s, srv := newTestServer(t, WithURLRateLimit(5, window))
	for i := 0; i < 150; i++ {
		fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(fmt.Sprintf("https://sweep.example/%d", i)), "")
	}
	if n := s.rateLimitEntries(); n == 0 {
		t.Fatal("no rate-limit windows recorded")
	}
	time.Sleep(window + 20*time.Millisecond)
	// The next request kicks off the background sweep; poll until it
	// lands (it runs off the request path, so the response returning
	// does not mean the map has been compacted yet).
	fetch(t, srv.URL+"/discussion?url="+url.QueryEscape("https://sweep.example/after"), "")
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := s.rateLimitEntries()
		if n <= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("rate-limit map still holds %d entries after the window lapsed, want <= 2", n)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}
