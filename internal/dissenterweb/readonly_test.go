package dissenterweb

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"dissenter/internal/htmlx"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
)

// TestReadOnlyRefusesWrites pins the replica-serving contract: every
// mutating endpoint answers 403 and performs no write; read endpoints
// are unaffected.
func TestReadOnlyRefusesWrites(t *testing.T) {
	_, srv, priv := newIsolatedServer(t, ReadOnly(), WithURLRateLimit(0, 0))
	cu := busyURL(t, priv)
	before := priv.DB.EventCount()

	for _, target := range []string{
		"/discussion/begin?url=" + url.QueryEscape("https://readonly.test/new"),
		"/discussion/vote?url=" + url.QueryEscape(cu.URL) + "&dir=up",
	} {
		resp, _ := fetch(t, srv.URL+target, "")
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("GET %s = %d, want 403", target, resp.StatusCode)
		}
	}
	resp, err := http.PostForm(srv.URL+"/discussion/comment",
		url.Values{"url": {cu.URL}, "text": {"nope"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("POST /discussion/comment = %d, want 403", resp.StatusCode)
	}
	if got := priv.DB.EventCount(); got != before {
		t.Fatalf("read-only server performed %d writes", got-before)
	}
	if resp, _ := fetch(t, srv.URL+"/trends", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("read path broke: /trends = %d", resp.StatusCode)
	}
}

// TestEventInvalidatorCoherence pins the replica cache-coherence loop:
// with the server's EventInvalidator registered as a store view,
// writes applied DIRECTLY to the store (the replica situation — the
// stream's ApplyEvent, not this server's handlers) must update every
// cached page exactly as the handlers would have.
func TestEventInvalidatorCoherence(t *testing.T) {
	s, srv, priv := newIsolatedServer(t, ReadOnly(), WithURLRateLimit(0, 0))
	priv.DB.RegisterView(s.EventInvalidator())
	cu := busyURL(t, priv)
	page := srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL)

	attrInt := func(body, attr string) int {
		v, ok := htmlx.Attr(body, attr)
		if !ok {
			t.Fatalf("no %s attribute in page", attr)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Vote: the cached discussion tally must move without a handler run.
	_, body := fetch(t, page, "")
	ups := attrInt(body, "data-up")
	priv.DB.Vote(cu.ID, 1, 0)
	_, body = fetch(t, page, "")
	if got := attrInt(body, "data-up"); got != ups+1 {
		t.Fatalf("cached tally shows %d ups after replicated vote, want %d", got, ups+1)
	}

	// Comment: cached discussion count and body must grow, and the
	// author's cached home page must list the URL the author now
	// commented on.
	var author *platform.User
	for _, u := range priv.DB.ActiveUsers() {
		author = u
		break
	}
	if author == nil {
		t.Fatal("no active user")
	}
	home := srv.URL + "/user/" + author.Username
	_, homeBefore := fetch(t, home, "")

	const freshURL = "https://readonly.test/invalidate"
	cpage := srv.URL + "/discussion?url=" + url.QueryEscape(freshURL)
	_, cbody := fetch(t, cpage, "")
	if !strings.Contains(cbody, "No comments yet") {
		t.Fatalf("expected empty page for unseen URL, got %q", cbody[:80])
	}
	target, _ := priv.DB.SubmitURL(&platform.CommentURL{
		ID:        ids.NewGenerator(0xCAFE).New(),
		URL:       freshURL,
		FirstSeen: time.Now().UTC().Truncate(time.Second),
	})
	priv.DB.AddComment(&platform.Comment{
		ID: ids.NewGenerator(0xCAFE).NewAt(time.Now()), URLID: target.ID,
		AuthorID: author.AuthorID, Text: "replicated comment lands",
		CreatedAt: time.Now().UTC(),
	})
	_, cbody = fetch(t, cpage, "")
	if !strings.Contains(cbody, "replicated comment lands") {
		t.Fatal("cached discussion page missing replicated comment")
	}
	_, homeAfter := fetch(t, home, "")
	if homeAfter == homeBefore {
		t.Fatal("cached home page survived the author's replicated comment")
	}
	if !strings.Contains(homeAfter, url.QueryEscape(target.URL)) {
		t.Fatal("refilled home page does not list the new commented URL")
	}

	// The leaderboard must re-rank after a replicated vote.
	lb := srv.URL + "/leaderboard"
	_, lbBefore := fetch(t, lb, "")
	priv.DB.Vote(cu.ID, 250, 0)
	_, lbAfter := fetch(t, lb, "")
	if lbBefore == lbAfter {
		t.Fatal("cached leaderboard survived a replicated 250-up vote")
	}
}
