package dissenterweb

import (
	"bytes"
	"fmt"
	"html"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"dissenter/internal/platform"
)

// The fragment-assembly oracle: discussion and home pages are now
// concatenations of write-time-memoized fragments plus a patched
// mutable span, so these tests pin the assembled output BYTE-IDENTICAL
// to the seed's full render — reimplemented here from scratch (two
// passes, html.EscapeString on every comment) so a drift in either the
// fragment shape or the assembly order fails loudly. Run under -race:
// the concurrent variant races posters and voters against readers and
// re-checks equality for all four session views once writes quiesce.

// oracleCommentDiv is the seed row renderer, kept independent of
// platform.AppendCommentRow on purpose.
func oracleCommentDiv(b *bytes.Buffer, class string, c *platform.Comment, withParent bool) {
	b.WriteString(`<div class="`)
	b.WriteString(class)
	b.WriteString(`" data-comment-id="`)
	b.WriteString(c.ID.String())
	b.WriteString(`" data-author-id="`)
	b.WriteString(c.AuthorID.String())
	if withParent {
		b.WriteString(`" data-parent-id="`)
		if !c.ParentID.IsZero() {
			b.WriteString(c.ParentID.String())
		}
	}
	b.WriteString("\">\n<p class=\"comment-text\">")
	b.WriteString(html.EscapeString(c.Text))
	b.WriteString("</p>\n</div>\n")
}

// oracleDiscussion is the seed discussion render: a counting pass and a
// rendering pass over the full comment list.
func oracleDiscussion(db *platform.DB, cu *platform.CommentURL, sess Session) string {
	var b bytes.Buffer
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter Discussion</title></head><body>\n")
	b.WriteString(`<div class="discussion" data-commenturl-id="`)
	b.WriteString(cu.ID.String())
	b.WriteString("\">\n<h1 class=\"pagetitle\">")
	b.WriteString(html.EscapeString(cu.Title))
	b.WriteString("</h1>\n<p class=\"pagedescription\">")
	b.WriteString(html.EscapeString(cu.Description))
	b.WriteString("</p>\n")
	comments := db.CommentsOnURL(cu.ID)
	shown := 0
	for _, c := range comments {
		if visible(c, sess) {
			shown++
		}
	}
	ups, downs := db.Votes(cu.ID)
	fmt.Fprintf(&b, `<span class="votes" data-up="%d" data-down="%d"></span>`+"\n", ups, downs)
	fmt.Fprintf(&b, `<span class="commentcount">%d</span>`+"\n</div>\n", shown)
	for _, c := range comments {
		if !visible(c, sess) {
			continue
		}
		oracleCommentDiv(&b, "comment", c, true)
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// oracleHome is the seed home render: URLsCommentedBy filtered by the
// per-URL any-visible-comment scan.
func oracleHome(db *platform.DB, u *platform.User, sess Session) string {
	var b bytes.Buffer
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter</title></head><body>\n")
	b.WriteString(`<div class="profile" data-author-id="`)
	b.WriteString(u.AuthorID.String())
	b.WriteString("\">\n<h1 class=\"username\">@")
	b.WriteString(html.EscapeString(u.Username))
	b.WriteString("</h1>\n<h2 class=\"displayname\">")
	b.WriteString(html.EscapeString(u.DisplayName))
	b.WriteString("</h2>\n<p class=\"bio\">")
	b.WriteString(html.EscapeString(u.Bio))
	b.WriteString("</p>\n</div>\n<ul class=\"history\">\n")
	for _, cu := range db.URLsCommentedBy(u.AuthorID) {
		anyVisible := false
		for _, c := range db.CommentsOnURL(cu.ID) {
			if c.AuthorID == u.AuthorID && visible(c, sess) {
				anyVisible = true
				break
			}
		}
		if !anyVisible {
			continue
		}
		b.WriteString(`<li class="commented-url"><a href="/discussion?url=`)
		b.WriteString(url.QueryEscape(cu.URL))
		b.WriteString(`">`)
		b.WriteString(html.EscapeString(cu.URL))
		b.WriteString("</a></li>\n")
	}
	b.WriteString("</ul>\n")
	b.WriteString(appBundle)
	b.WriteString("</body></html>\n")
	return b.String()
}

// oracleViews is one session per view key, with tokens registered by
// registerOracleSessions.
var oracleViews = []struct {
	token string
	sess  Session
}{
	{"", Session{}},
	{"oracle-10", Session{ShowNSFW: true}},
	{"oracle-01", Session{ShowOffensive: true}},
	{"oracle-11", Session{ShowNSFW: true, ShowOffensive: true}},
}

func registerOracleSessions(s *Server) {
	for _, v := range oracleViews {
		if v.token != "" {
			s.RegisterSession(v.token, v.sess)
		}
	}
}

// assertPagesMatchOracle fetches each URL's discussion page and each
// user's home page under all four views and compares bytes.
func assertPagesMatchOracle(t *testing.T, srv *httptest.Server, db *platform.DB,
	urls []*platform.CommentURL, users []*platform.User) {
	t.Helper()
	for _, v := range oracleViews {
		for _, cu := range urls {
			_, got := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(cu.URL), v.token)
			want := oracleDiscussion(db, cu, v.sess)
			if got != want {
				t.Errorf("discussion %s view %+v: fragment assembly diverges from full render (%d vs %d bytes)",
					cu.URL, v.sess, len(got), len(want))
			}
		}
		for _, u := range users {
			_, got := fetch(t, srv.URL+"/user/"+u.Username, v.token)
			want := oracleHome(db, u, v.sess)
			if got != want {
				t.Errorf("home %s view %+v: fragment assembly diverges from full render (%d vs %d bytes)",
					u.Username, v.sess, len(got), len(want))
			}
		}
	}
}

func TestFragmentPagesByteEqualFullRender(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerOracleSessions(s)
	urls := allURLs(priv.DB)
	if len(urls) > 8 {
		urls = urls[:8]
	}
	users := priv.DB.ActiveUsers()
	if len(users) > 4 {
		users = users[:4]
	}
	// Twice: the first pass fills (cold fragment view + cache), the
	// second serves patched/cached entries.
	assertPagesMatchOracle(t, srv, priv.DB, urls, users)
	assertPagesMatchOracle(t, srv, priv.DB, urls, users)
}

// TestFragmentPagesByteEqualFullRenderUnderWrites is the moving-target
// variant: concurrent posters (plain, NSFW, offensive, replies) and
// voters hammer a handful of hot URLs while readers pull all four
// views; once writes quiesce, every page must still be byte-identical
// to the full render.
func TestFragmentPagesByteEqualFullRenderUnderWrites(t *testing.T) {
	s, srv, priv := newIsolatedServer(t)
	registerOracleSessions(s)
	poster := registerPoster(t, s, priv, "poster-tok")
	hot := allURLs(priv.DB)[:4]

	const posters, perPoster, voters, perVoter = 3, 10, 2, 10
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPoster; i++ {
				form := url.Values{
					"url":  {hot[(p+i)%len(hot)].URL},
					"text": {fmt.Sprintf(`racing <poster> %d "comment" %d`, p, i)},
				}
				if i%3 == 0 {
					form.Set("nsfw", "1")
				}
				if i%4 == 0 {
					form.Set("offensive", "1")
				}
				resp, body := postComment(t, srv, "poster-tok", form)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("racing post status = %d, body %q", resp.StatusCode, body)
					return
				}
			}
		}(p)
	}
	for v := 0; v < voters; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			for i := 0; i < perVoter; i++ {
				dir := "up"
				if (v+i)%3 == 0 {
					dir = "down"
				}
				resp, _ := fetch(t, srv.URL+"/discussion/vote?dir="+dir+
					"&url="+url.QueryEscape(hot[i%len(hot)].URL), "")
				if resp.StatusCode != http.StatusOK { // redirect followed
					t.Errorf("racing vote status = %d", resp.StatusCode)
					return
				}
			}
		}(v)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 2*perPoster; i++ {
				v := oracleViews[(r+i)%len(oracleViews)]
				fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(hot[i%len(hot)].URL), v.token)
				fetch(t, srv.URL+"/user/"+poster.Username, v.token)
			}
		}(r)
	}
	wg.Wait()

	assertPagesMatchOracle(t, srv, priv.DB, hot, []*platform.User{poster})
}
