package dissenterweb

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"dissenter/internal/htmlx"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
)

// leaderboardRow is one parsed rendering row.
type leaderboardRow struct {
	net  int
	href string
}

// leaderboardRows parses the rendered rows into (net, target URL)
// pairs. Rows are split on the row marker because the href lives past
// the opening tag htmlx.FindTags would stop at.
func leaderboardRows(t *testing.T, body string) []leaderboardRow {
	t.Helper()
	chunks := strings.Split(body, `<li class="leader"`)
	var rows []leaderboardRow
	for _, chunk := range chunks[1:] {
		raw, ok := htmlx.Attr(chunk, "data-net")
		if !ok {
			t.Fatalf("leaderboard row lacks data-net: %q", chunk)
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			t.Fatal(err)
		}
		esc, ok := htmlx.Between(chunk, `href="/discussion?url=`, `"`)
		if !ok {
			t.Fatalf("leaderboard row lacks discussion link: %q", chunk)
		}
		href, err := url.QueryUnescape(esc)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, leaderboardRow{n, href})
	}
	return rows
}

// TestLeaderboardOrdering: the endpoint serves the store's Figure 5
// ordering — net votes descending — and exactly matches the
// full-store scan.
func TestLeaderboardOrdering(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := fetch(t, srv.URL+"/leaderboard", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	rows := leaderboardRows(t, body)
	if len(rows) == 0 {
		t.Fatal("no leaderboard entries")
	}
	type urlNet struct {
		addr string
		net  int
	}
	var oracle []urlNet
	out.DB.RangeURLs(func(cu *platform.CommentURL) bool {
		ups, downs := out.DB.Votes(cu.ID)
		oracle = append(oracle, urlNet{cu.URL, ups - downs})
		return true
	})
	sort.Slice(oracle, func(i, j int) bool { return oracle[i].net > oracle[j].net })
	if rows[0].net != oracle[0].net {
		t.Errorf("top leader has net %d, ground-truth max %d", rows[0].net, oracle[0].net)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].net > rows[i-1].net {
			t.Fatalf("leaderboard not sorted at %d: %v", i, rows)
		}
	}
	want := platform.LeaderLimit
	if n := len(oracle); n < want {
		want = n
	}
	if len(rows) != want {
		t.Fatalf("leaderboard lists %d rows, want %d", len(rows), want)
	}
}

// TestLeaderboardViewIndependence: net votes carry no shadow overlay,
// so opted-in and anonymous sessions must receive byte-identical
// renderings (and therefore share one cache entry).
func TestLeaderboardViewIndependence(t *testing.T) {
	s, srv := newTestServer(t)
	s.RegisterSession("leader-opted", Session{Username: "x", ShowNSFW: true, ShowOffensive: true})
	_, anon := fetch(t, srv.URL+"/leaderboard", "")
	_, opted := fetch(t, srv.URL+"/leaderboard", "leader-opted")
	if anon != opted {
		t.Fatal("leaderboard rendering differs across session views")
	}
}

// TestLeaderboardVoteInvalidation: a vote through /discussion/vote
// must drop the cached leaderboard by exact key — the very next fetch
// reflects the new tally, inside the TTL.
func TestLeaderboardVoteInvalidation(t *testing.T) {
	_, srv, priv := newIsolatedServer(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	_, before := fetch(t, srv.URL+"/leaderboard", "")
	rows := leaderboardRows(t, before)
	if len(rows) == 0 {
		t.Fatal("no leaderboard entries")
	}
	top := rows[0]
	cu := priv.DB.URLByString(top.href)
	if cu == nil {
		t.Fatalf("cannot resolve top leader %q", top.href)
	}

	// Upvote the current leader: its net strictly grows, so the first
	// row must change. A cached pre-vote rendering would still show the
	// old net.
	for i := 0; i < 3; i++ {
		resp, err := client.Get(srv.URL + "/discussion/vote?dir=up&url=" + url.QueryEscape(top.href))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusFound {
			t.Fatalf("vote status = %d", resp.StatusCode)
		}
	}
	_, after := fetch(t, srv.URL+"/leaderboard", "")
	rowsAfter := leaderboardRows(t, after)
	if rowsAfter[0].href != top.href || rowsAfter[0].net != top.net+3 {
		t.Fatalf("after 3 upvotes, top row = %+v, want %q at net %d",
			rowsAfter[0], top.href, top.net+3)
	}
}

// TestLeaderboardSubmissionInvalidation: registering a never-seen URL
// through /discussion/begin must drop the cached leaderboard. The
// fixture's URLs all sit at negative nets, so the newcomer (net zero)
// leads the re-rendered board — a stale cache entry would still show
// the all-negative pre-registration board.
func TestLeaderboardSubmissionInvalidation(t *testing.T) {
	gen := ids.NewGenerator(0x1EAD)
	base := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	var urls []*platform.CommentURL
	for i := 0; i < 5; i++ {
		urls = append(urls, &platform.CommentURL{
			ID:        gen.NewAt(base),
			URL:       fmt.Sprintf("https://sunk.example/%d", i),
			Downs:     i + 1,
			FirstSeen: base,
		})
	}
	db := platform.New(nil, urls, nil, nil)
	s := NewServer(db, WithURLRateLimit(0, 0))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	_, before := fetch(t, srv.URL+"/leaderboard", "") // warm the cache
	if rows := leaderboardRows(t, before); rows[0].net != -1 {
		t.Fatalf("pre-registration top net = %d, want -1", rows[0].net)
	}
	novel := "https://example.org/leaderboard/novel-entry"
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(novel))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("begin status = %d", resp.StatusCode)
	}
	_, after := fetch(t, srv.URL+"/leaderboard", "")
	rows := leaderboardRows(t, after)
	if rows[0].href != novel || rows[0].net != 0 {
		t.Fatalf("after registration, top row = %+v, want %q at net 0", rows[0], novel)
	}
}
