// Package dissenterweb simulates the Dissenter web application surface
// the paper reverse engineers and crawls (§2, §3.2): user home pages
// (whose response size betrays account existence), per-URL comment pages
// (with per-URL rate limiting), single-comment pages carrying hidden
// user metadata in commented-out JavaScript, and the NSFW/"offensive"
// shadow overlay that is only rendered for authenticated sessions that
// opted in.
//
// The server reads the sharded platform store concurrently and fronts
// its hot endpoints — comment listings, user profiles, trends — with an
// LRU+TTL response cache keyed by endpoint, subject, and session view
// (so shadow-overlay opt-ins never leak into another session's cached
// page). The mutable surfaces (URL submission, voting, and the live
// comment write path at POST /discussion/comment) invalidate every
// session view of the affected subjects by exact key — a posted comment
// drops its discussion page, the author's home page, and the trends
// ranking (see comment.go for the contract) — and an epoch check
// discards renders that raced with an invalidation; the TTL is the
// backstop for out-of-band store writes. URL-keyed surfaces normalize
// the address with urlkit.Normalize first, so trivially different
// encodings of one address share a record, a cache subject, and a
// rate-limit bucket.
package dissenterweb

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/respcache"
	"dissenter/internal/urlkit"
)

// Session is the view configuration of an authenticated account, the
// moral equivalent of the test accounts the authors registered with the
// NSFW and offensive settings enabled separately.
type Session struct {
	Username      string
	ShowNSFW      bool
	ShowOffensive bool
}

// Server serves the simulated web app over a platform.DB. Construct with
// NewServer; it implements http.Handler.
type Server struct {
	db    *platform.DB
	idgen *ids.Generator
	cache *respcache.Cache[string]
	// cacheConfigured marks that WithResponseCache ran, so NewServer
	// does not build the default cache just to throw it away.
	cacheConfigured bool

	urlLimit  int // requests per URL per window (10/min observed)
	urlWindow time.Duration

	mu       sync.Mutex
	sessions map[string]Session
	hits     map[string]*hitWindow
	// lastSweep is when expired rate-limit windows were last evicted;
	// rateLimit sweeps opportunistically so hits stays bounded by the
	// distinct URLs seen in roughly two windows, not the whole crawl.
	lastSweep time.Time
}

type hitWindow struct {
	start time.Time
	n     int
}

// Option configures the Server.
type Option func(*Server)

// WithURLRateLimit overrides the observed 10 requests/minute per-URL
// limit (limit <= 0 disables).
func WithURLRateLimit(limit int, window time.Duration) Option {
	return func(s *Server) {
		s.urlLimit = limit
		s.urlWindow = window
	}
}

// Default response-cache shape: enough entries for the hot set of a
// crawl, with a short TTL as the invalidation backstop.
const (
	DefaultCacheSize = 4096
	DefaultCacheTTL  = 30 * time.Second
)

// WithResponseCache overrides the response cache's capacity and TTL.
// size <= 0 or ttl <= 0 disables caching entirely.
func WithResponseCache(size int, ttl time.Duration) Option {
	return func(s *Server) {
		s.cache = respcache.New[string](size, ttl)
		s.cacheConfigured = true
	}
}

// serverSeq distinguishes the ID-generator seeds of servers created in
// one process: two servers sharing a DB must never mint colliding
// commenturl-ids for same-second submissions.
var serverSeq atomic.Uint64

// NewServer builds the web app simulator.
func NewServer(db *platform.DB, opts ...Option) *Server {
	s := &Server{
		db:        db,
		idgen:     ids.NewGenerator(0xD15C0551 ^ serverSeq.Add(1)<<32 ^ uint64(time.Now().UnixNano())),
		urlLimit:  10,
		urlWindow: time.Minute,
		sessions:  map[string]Session{},
		hits:      map[string]*hitWindow{},
	}
	for _, o := range opts {
		o(s)
	}
	if !s.cacheConfigured {
		s.cache = respcache.New[string](DefaultCacheSize, DefaultCacheTTL)
	}
	return s
}

// RegisterSession issues a session token with the given view settings —
// the simulator-side analogue of creating an account and flipping its
// settings (§3.2). The token is sent as a "session" cookie.
func (s *Server) RegisterSession(token string, sess Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sessions[token] = sess
}

func (s *Server) session(r *http.Request) Session {
	c, err := r.Cookie("session")
	if err != nil {
		return Session{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[c.Value]
}

// visible reports whether a comment is rendered for the session.
func visible(c *platform.Comment, sess Session) bool {
	if c.NSFW && !sess.ShowNSFW {
		return false
	}
	if c.Offensive && !sess.ShowOffensive {
		return false
	}
	return true
}

// --- response cache helpers --------------------------------------------

// viewKey encodes the bits of the session that change what is rendered.
// Two sessions with equal view settings share cache entries; a session
// that can see the shadow overlay never shares with one that cannot.
func viewKey(sess Session) string {
	k := [2]byte{'0', '0'}
	if sess.ShowNSFW {
		k[0] = '1'
	}
	if sess.ShowOffensive {
		k[1] = '1'
	}
	return string(k[:])
}

func trendsKey(sess Session) string      { return "trends|" + viewKey(sess) }
func discussionPrefix(raw string) string { return "disc|" + raw + "|" }
func homePrefix(username string) string  { return "home|" + username + "|" }

// allViewKeys enumerates every viewKey value, so a subject's cache
// entries can be dropped with exact deletes instead of a full-cache
// prefix scan.
var allViewKeys = [...]string{"00", "01", "10", "11"}

func (s *Server) cacheGet(key string) (string, bool) { return s.cache.Get(key) }

// invalidateSubject drops every session view of one cache subject
// ("disc|<url>|" or "trends|").
func (s *Server) invalidateSubject(prefix string) {
	for _, vk := range allViewKeys {
		s.cache.Invalidate(prefix + vk)
	}
}

// CacheStats exposes the response cache's hit/miss counters (zero when
// caching is disabled); the load benchmarks report them.
func (s *Server) CacheStats() (hits, misses uint64) { return s.cache.Stats() }

// rateLimitEntries reports the number of live rate-limit windows; the
// eviction tests pin that it stays bounded.
func (s *Server) rateLimitEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.hits)
}

func writeHTML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, body)
}

// ServeHTTP routes the app's pages.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/user/"):
		s.handleHome(w, r, strings.TrimPrefix(r.URL.Path, "/user/"))
	case r.URL.Path == "/discussion":
		s.handleDiscussion(w, r)
	case strings.HasPrefix(r.URL.Path, "/comment/"):
		s.handleComment(w, r, strings.TrimPrefix(r.URL.Path, "/comment/"))
	case r.URL.Path == "/trends" || r.URL.Path == "/trends/":
		s.handleTrends(w, r)
	case r.URL.Path == "/discussion/begin":
		s.handleBegin(w, r)
	case r.URL.Path == "/discussion/vote":
		s.handleVote(w, r)
	case r.URL.Path == "/discussion/comment":
		s.handlePostComment(w, r)
	default:
		http.NotFound(w, r)
	}
}

// rateLimit applies the per-URL request budget. The counter is keyed by
// the *target* URL, so a crawler that never revisits a page never trips
// it — exactly the loophole §3.2 reports. Cached responses still count:
// the real platform throttled by request, not by render cost.
func (s *Server) rateLimit(w http.ResponseWriter, key string) bool {
	if s.urlLimit <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	// Opportunistic eviction: once per window, drop every entry whose
	// window has lapsed. Without this a crawler sweeping distinct URLs
	// grows the map forever; with it the map holds only URLs requested
	// within the last window or two.
	if now.Sub(s.lastSweep) >= s.urlWindow {
		for k, win := range s.hits {
			if now.Sub(win.start) >= s.urlWindow {
				delete(s.hits, k)
			}
		}
		s.lastSweep = now
	}
	hw := s.hits[key]
	if hw == nil || now.Sub(hw.start) >= s.urlWindow {
		hw = &hitWindow{start: now}
		s.hits[key] = hw
	}
	hw.n++
	if hw.n > s.urlLimit {
		w.Header().Set("Retry-After", "60")
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return false
	}
	return true
}

// handleHome renders a Dissenter user home page. Missing accounts get a
// ~150-byte not-found page; real accounts get a >= 10 kB page (the size
// side channel of §3.1).
func (s *Server) handleHome(w http.ResponseWriter, r *http.Request, username string) {
	u := s.db.UserByUsername(username)
	if u == nil || !u.HasDissenter {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `<!DOCTYPE html><html><head><title>Dissenter</title></head><body><p>Sorry, that page doesn't exist.</p></body></html>`)
		return
	}
	sess := s.session(r)
	key := homePrefix(username) + viewKey(sess)
	if body, ok := s.cacheGet(key); ok {
		writeHTML(w, body)
		return
	}
	epoch := s.cache.Epoch(key)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter</title></head><body>\n")
	fmt.Fprintf(&b, `<div class="profile" data-author-id="%s">`+"\n", u.AuthorID)
	fmt.Fprintf(&b, `<h1 class="username">@%s</h1>`+"\n", html.EscapeString(u.Username))
	fmt.Fprintf(&b, `<h2 class="displayname">%s</h2>`+"\n", html.EscapeString(u.DisplayName))
	fmt.Fprintf(&b, `<p class="bio">%s</p>`+"\n", html.EscapeString(u.Bio))
	b.WriteString("</div>\n<ul class=\"history\">\n")
	for _, cu := range s.db.URLsCommentedBy(u.AuthorID) {
		if !s.anyVisibleBy(u.AuthorID, cu.ID, sess) {
			continue
		}
		fmt.Fprintf(&b, `<li class="commented-url"><a href="/discussion?url=%s">%s</a></li>`+"\n",
			url.QueryEscape(cu.URL), html.EscapeString(cu.URL))
	}
	b.WriteString("</ul>\n")
	b.WriteString(appBundle)
	b.WriteString("</body></html>\n")
	body := b.String()
	s.cache.PutAt(key, body, epoch)
	writeHTML(w, body)
}

// anyVisibleBy reports whether the author has at least one comment on the
// URL that the session may see (hidden-only URLs stay off the profile).
func (s *Server) anyVisibleBy(author, urlID ids.ObjectID, sess Session) bool {
	for _, c := range s.db.CommentsOnURL(urlID) {
		if c.AuthorID == author && visible(c, sess) {
			return true
		}
	}
	return false
}

// handleDiscussion renders the comment page for ?url=.
func (s *Server) handleDiscussion(w http.ResponseWriter, r *http.Request) {
	raw := urlkit.Normalize(r.URL.Query().Get("url"))
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	if !s.rateLimit(w, "discussion:"+raw) {
		return
	}
	sess := s.session(r)
	key := discussionPrefix(raw) + viewKey(sess)
	if body, ok := s.cacheGet(key); ok {
		writeHTML(w, body)
		return
	}
	epoch := s.cache.Epoch(key)
	cu := s.db.URLByString(raw)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter Discussion</title></head><body>\n")
	if cu == nil {
		// A URL nobody has entered yet: an empty comment page inviting
		// the first comment (§2.1). Never cached — the key is
		// visitor-controlled, so a scan of novel URLs would evict the
		// whole hot set with copies of this constant page, and the
		// render is cheaper than the lookup that missed.
		b.WriteString(`<div class="discussion new"><p>No comments yet. Be the first to dissent!</p></div>` + "\n")
		b.WriteString("</body></html>\n")
		writeHTML(w, b.String())
		return
	}
	fmt.Fprintf(&b, `<div class="discussion" data-commenturl-id="%s">`+"\n", cu.ID)
	fmt.Fprintf(&b, `<h1 class="pagetitle">%s</h1>`+"\n", html.EscapeString(cu.Title))
	fmt.Fprintf(&b, `<p class="pagedescription">%s</p>`+"\n", html.EscapeString(cu.Description))
	comments := s.db.CommentsOnURL(cu.ID)
	shown := 0
	for _, c := range comments {
		if visible(c, sess) {
			shown++
		}
	}
	ups, downs := s.db.Votes(cu.ID)
	fmt.Fprintf(&b, `<span class="votes" data-up="%d" data-down="%d"></span>`+"\n", ups, downs)
	fmt.Fprintf(&b, `<span class="commentcount">%d</span>`+"\n", shown)
	b.WriteString("</div>\n")
	for _, c := range comments {
		if !visible(c, sess) {
			continue
		}
		// Note: no flag in the body distinguishes NSFW/offensive content —
		// the crawler must infer labels differentially (§3.2).
		fmt.Fprintf(&b, `<div class="comment" data-comment-id="%s" data-author-id="%s" data-parent-id="%s">`+"\n",
			c.ID, c.AuthorID, parentAttr(c))
		fmt.Fprintf(&b, `<p class="comment-text">%s</p>`+"\n", html.EscapeString(c.Text))
		b.WriteString("</div>\n")
	}
	b.WriteString("</body></html>\n")
	body := b.String()
	s.cache.PutAt(key, body, epoch)
	writeHTML(w, body)
}

func parentAttr(c *platform.Comment) string {
	if c.ParentID.IsZero() {
		return ""
	}
	return c.ParentID.String()
}

// handleComment renders the single-comment page, including the
// commented-out commentAuthor JavaScript variable with otherwise
// undiscoverable user metadata (§3.2).
func (s *Server) handleComment(w http.ResponseWriter, r *http.Request, cidStr string) {
	cid, err := ids.Parse(strings.Trim(cidStr, "/"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	c := s.db.CommentByID(cid)
	sess := s.session(r)
	if c == nil || !visible(c, sess) {
		http.NotFound(w, r)
		return
	}
	author := s.db.UserByAuthorID(c.AuthorID)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter Comment</title></head><body>\n")
	fmt.Fprintf(&b, `<div class="comment" data-comment-id="%s" data-author-id="%s" data-parent-id="%s">`+"\n",
		c.ID, c.AuthorID, parentAttr(c))
	fmt.Fprintf(&b, `<p class="comment-text">%s</p>`+"\n", html.EscapeString(c.Text))
	b.WriteString("</div>\n")
	for _, reply := range s.db.CommentsOnURL(c.URLID) {
		if reply.ParentID == c.ID && visible(reply, sess) {
			fmt.Fprintf(&b, `<div class="reply" data-comment-id="%s" data-author-id="%s">`+"\n", reply.ID, reply.AuthorID)
			fmt.Fprintf(&b, `<p class="comment-text">%s</p>`+"\n", html.EscapeString(reply.Text))
			b.WriteString("</div>\n")
		}
	}
	if author != nil {
		meta := hiddenMeta{
			Username:    author.Username,
			Language:    author.Language,
			Permissions: author.Flags,
			ViewFilters: author.Filters,
		}
		blob, err := json.Marshal(meta)
		if err == nil {
			b.WriteString("<script>\n")
			// The assignment is commented out — dead code shipped to every
			// visitor, invisible in the DOM, and full of metadata.
			fmt.Fprintf(&b, "// var commentAuthor = %s;\n", blob)
			b.WriteString("var commentView = {\"ready\": true};\n")
			b.WriteString("</script>\n")
		}
	}
	b.WriteString("</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// hiddenMeta is the commentAuthor payload.
type hiddenMeta struct {
	Username    string               `json:"username"`
	Language    string               `json:"language"`
	Permissions platform.UserFlags   `json:"permissions"`
	ViewFilters platform.ViewFilters `json:"viewFilters"`
}

// appBundle is filler standing in for the web app's bundled JS/CSS; it is
// what puts real home pages over the 10 kB detection threshold.
var appBundle = func() string {
	var b strings.Builder
	b.WriteString("<script>/* dissenter app bundle */\n")
	for i := 0; i < 160; i++ {
		fmt.Fprintf(&b, "function module%04d(){return %d;} // padding padding padding\n", i, i)
	}
	b.WriteString("</script>\n")
	return b.String()
}()
