// Package dissenterweb simulates the Dissenter web application surface
// the paper reverse engineers and crawls (§2, §3.2): user home pages
// (whose response size betrays account existence), per-URL comment pages
// (with per-URL rate limiting), single-comment pages carrying hidden
// user metadata in commented-out JavaScript, and the NSFW/"offensive"
// shadow overlay that is only rendered for authenticated sessions that
// opted in.
//
// The server reads the sharded platform store concurrently and fronts
// its hot endpoints — comment listings, user profiles, trends — with an
// LRU+TTL response cache keyed by endpoint, subject, and session view
// (so shadow-overlay opt-ins never leak into another session's cached
// page). Cache misses coalesce through respcache.GetOrFill, so a
// stampede of concurrent requests on one cold hot page runs a single
// render. Discussion pages cache STRUCTURED entries — the stable
// pre-escaped head and comment stream separated from the mutable
// vote/count span — assembled from the store's write-maintained
// fragment view (platform.DB.CommentStream): a vote patches two
// integers in place, a posted comment swaps in the view's grown stream
// snapshot, and neither discards kilobytes of escaped HTML (see
// refreshDiscussion). The remaining mutable surfaces invalidate every
// session view of the affected subjects by exact key — a posted
// comment drops the author's home page and the trends ranking (see
// comment.go for the contract) — and an epoch check discards renders
// that raced with an invalidation; the TTL is the backstop for
// out-of-band store writes. URL-keyed surfaces normalize the address
// with urlkit.Normalize first, so trivially different encodings of one
// address share a record, a cache subject, and a rate-limit bucket.
//
// On top of the cache sits a thin response layer (respond.go): every
// cached entry lazily carries a COMPOSED form — final body bytes, a
// write-time gzip variant, and a strong ETag minted from the entry's
// respcache generation stamp — so a cache hit negotiates
// Accept-Encoding, answers a matching If-None-Match with a bodyless
// 304, and otherwise writes precomposed bytes, with zero allocations
// end to end (session lookup, query extraction, and the cache-key
// build are all allocation-free; BenchmarkDiscussionHit pins the
// budget at exactly 0). Because every fill and every in-place patch
// advances the generation, a validator issued before any mutation can
// never produce a 304 — revalidation is exactly as fresh as a full
// response.
package dissenterweb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dissenter/internal/httpguard"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/respcache"
	"dissenter/internal/urlkit"
)

// Session is the view configuration of an authenticated account, the
// moral equivalent of the test accounts the authors registered with the
// NSFW and offensive settings enabled separately.
type Session struct {
	Username      string
	ShowNSFW      bool
	ShowOffensive bool
}

// Server serves the simulated web app over a platform.DB. Construct with
// NewServer; it implements http.Handler.
type Server struct {
	db    *platform.DB
	idgen *ids.Generator
	cache *respcache.Cache[page]
	// cacheConfigured marks that WithResponseCache ran, so NewServer
	// does not build the default cache just to throw it away.
	cacheConfigured bool

	urlLimit  int // requests per URL per window (10/min observed)
	urlWindow time.Duration

	// readOnly refuses the mutating endpoints (ReadOnly): set on
	// servers fronting a replica store, where writes arrive from the
	// replication stream, not from handlers.
	readOnly bool

	// health, when set (WithHealth), serves /healthz and /readyz from
	// this handler, so a standalone web mount carries its own
	// operational surface.
	health *httpguard.Health

	// Every request consults the session table and (on rate-limited
	// endpoints) the per-URL hit counters; they used to share one mutex,
	// which made an unrelated write — a RegisterSession, a rate-limit
	// sweep — stall every concurrent reader. They are now independent:
	// sessions is a read-mostly table under its own RWMutex, and the hit
	// counters have their own mutex whose O(n) expiry sweep runs on a
	// background goroutine (see rateLimit), never on a request's
	// critical path.
	sessMu   sync.RWMutex
	sessions map[string]Session

	rlMu sync.Mutex
	hits map[string]*hitWindow
	// lastSweep (unix nanos) is when expired rate-limit windows were
	// last evicted; sweeps keep hits bounded by the distinct URLs seen
	// in roughly two windows, not the whole crawl. sweeping guards
	// against piling up more than one sweep goroutine.
	lastSweep atomic.Int64
	sweeping  atomic.Bool

	// Pre-escaped immutable per-record fragments, memoized once and
	// reused across renders: trends/leaderboard row remainders, home
	// commented-URL rows, and discussion-page heads. Per-comment
	// fragments live in the platform fragment view (pageindex.go); these
	// memos cover the record-derived markup around them.
	trendFrags fragMemo
	homeFrags  fragMemo
	discHeads  fragMemo
}

// fragMemo memoizes immutable per-record HTML fragments keyed by
// ObjectID, with a wholesale reset if churn ever grows it far past the
// hot set — so it can never become a slow leak.
type fragMemo struct {
	m   sync.Map // ids.ObjectID -> string
	n   atomic.Int64
	max int64
}

func (f *fragMemo) get(id ids.ObjectID, build func() string) string {
	if v, ok := f.m.Load(id); ok {
		return v.(string)
	}
	frag := build()
	if f.n.Add(1) > f.max {
		f.m.Clear()
		f.n.Store(1)
	}
	f.m.Store(id, frag)
	return frag
}

type hitWindow struct {
	start time.Time
	n     int
}

// Option configures the Server.
type Option func(*Server)

// WithURLRateLimit overrides the observed 10 requests/minute per-URL
// limit (limit <= 0 disables).
func WithURLRateLimit(limit int, window time.Duration) Option {
	return func(s *Server) {
		s.urlLimit = limit
		s.urlWindow = window
	}
}

// Default response-cache shape: enough entries for the hot set of a
// crawl, with a short TTL as the invalidation backstop.
const (
	DefaultCacheSize = 4096
	DefaultCacheTTL  = 30 * time.Second
)

// WithResponseCache overrides the response cache's capacity and TTL.
// size <= 0 or ttl <= 0 disables caching entirely.
func WithResponseCache(size int, ttl time.Duration) Option {
	return func(s *Server) {
		s.cache = respcache.New[page](size, ttl)
		s.cacheConfigured = true
	}
}

// WithHealth routes /healthz (liveness, always 200) and /readyz
// (traffic steering: 503 while any registered check fails or a drain
// is underway) through this server, sharing the process's Health.
func WithHealth(h *httpguard.Health) Option {
	return func(s *Server) {
		s.health = h
	}
}

// serverSeq distinguishes the ID-generator seeds of servers created in
// one process: two servers sharing a DB must never mint colliding
// commenturl-ids for same-second submissions.
var serverSeq atomic.Uint64

// NewServer builds the web app simulator.
func NewServer(db *platform.DB, opts ...Option) *Server {
	s := &Server{
		db:        db,
		idgen:     ids.NewGenerator(0xD15C0551 ^ serverSeq.Add(1)<<32 ^ uint64(time.Now().UnixNano())),
		urlLimit:  10,
		urlWindow: time.Minute,
		sessions:  map[string]Session{},
		hits:      map[string]*hitWindow{},
	}
	// The fragment memos hold one small string per hot record; the
	// bounds only cap pathological churn (see fragMemo).
	s.trendFrags.max = 64 * platform.TrendLimit
	s.homeFrags.max = 4 * DefaultCacheSize
	s.discHeads.max = 4 * DefaultCacheSize
	for _, o := range opts {
		o(s)
	}
	if !s.cacheConfigured {
		s.cache = respcache.New[page](DefaultCacheSize, DefaultCacheTTL)
	}
	return s
}

// RegisterSession issues a session token with the given view settings —
// the simulator-side analogue of creating an account and flipping its
// settings (§3.2). The token is sent as a "session" cookie.
func (s *Server) RegisterSession(token string, sess Session) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.sessions[token] = sess
}

func (s *Server) session(r *http.Request) Session {
	// sessionToken (respond.go) rather than r.Cookie: same cookie, none
	// of Cookie's per-call parse allocations on the serving hot path.
	tok := sessionToken(r)
	if tok == "" {
		return Session{}
	}
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return s.sessions[tok]
}

// visible reports whether a comment is rendered for the session.
//
// INVARIANT: this predicate must stay exactly expressible as
// platform's visibility-class mask (trendindex.go: viewMask /
// visibleCount) — handleTrends serves counts computed by that mask,
// and any rule added here that the mask cannot express (say,
// authors always seeing their own flagged comments) would silently
// diverge trends counts from discussion pages.
func visible(c *platform.Comment, sess Session) bool {
	if c.NSFW && !sess.ShowNSFW {
		return false
	}
	if c.Offensive && !sess.ShowOffensive {
		return false
	}
	return true
}

// --- response cache helpers --------------------------------------------

// viewKey encodes the bits of the session that change what is rendered.
// Two sessions with equal view settings share cache entries; a session
// that can see the shadow overlay never shares with one that cannot.
func viewKey(sess Session) string {
	k := [2]byte{'0', '0'}
	if sess.ShowNSFW {
		k[0] = '1'
	}
	if sess.ShowOffensive {
		k[1] = '1'
	}
	return string(k[:])
}

// allViewKeys enumerates every viewKey value, so a subject's cache
// entries can be dropped with exact deletes instead of a full-cache
// prefix scan.
var allViewKeys = [...]string{"00", "01", "10", "11"}

func (s *Server) cacheGet(key string) (page, bool) { return s.cache.Get(key) }

// invalidateSubject drops every session view of one cache subject
// ("home|<author>|" or "trends|").
func (s *Server) invalidateSubject(prefix string) {
	for _, vk := range allViewKeys {
		s.cache.Invalidate(prefix + vk)
	}
}

// page is one response-cache entry. Simple endpoints (home, trends,
// leaderboard) cache a fully rendered body in simple. Discussion pages
// are structured — head (the stable prefix through the page
// description), the mutable vote/count span as three integers, and the
// view's pre-escaped comment stream — so a write can patch the span or
// swap the stream without discarding the kilobytes that did not
// change. A non-empty head marks a structured entry.
// Both shapes additionally carry their content generation's identity
// (rev, stamped by the cache) and a shared respBox that lazily holds
// the composed response — final bytes, write-time gzip variant, ETag —
// so cache hits shovel pre-built bytes instead of rendering (see
// respond.go). Entries from a disabled cache leave both zero and are
// streamed by writePage.
type page struct {
	simple string

	head              string
	ups, downs, count int
	stream            []byte

	rev  respcache.Rev
	resp *respBox
}

// writePage sends a cached or freshly filled entry. Structured entries
// are written part by part — the mutable span is rendered from its
// integers into a stack buffer — so serving never re-assembles a body
// string.
func writePage(w http.ResponseWriter, p page) {
	if p.head == "" {
		writeHTML(w, p.simple)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, p.head)
	var a [160]byte
	w.Write(appendVoteSpan(a[:0], p.ups, p.downs, p.count))
	w.Write(p.stream)
	io.WriteString(w, "</body></html>\n")
}

// appendVoteSpan renders the mutable vote/count span of a structured
// discussion page into dst — the single source of those bytes for both
// the streaming path (writePage) and the composed path (composeBody),
// so the two can never drift apart.
func appendVoteSpan(dst []byte, ups, downs, count int) []byte {
	dst = append(dst, `<span class="votes" data-up="`...)
	dst = strconv.AppendInt(dst, int64(ups), 10)
	dst = append(dst, `" data-down="`...)
	dst = strconv.AppendInt(dst, int64(downs), 10)
	dst = append(dst, "\"></span>\n<span class=\"commentcount\">"...)
	dst = strconv.AppendInt(dst, int64(count), 10)
	return append(dst, "</span>\n</div>\n"...)
}

// refreshDiscussion folds a just-landed write (a vote, a posted
// comment) into every live cached view of one discussion page IN
// PLACE: the patch re-reads the tally, count, and stream snapshot from
// the store under the cache shard lock, so whichever of two racing
// patches applies last reflects both writes. Views with no live entry
// fall back to exact-key invalidation, whose tombstone also discards
// any fill that raced the write — the entry is then rebuilt on the
// next request. Either way, a reader can never be served page state
// predating the write.
func (s *Server) refreshDiscussion(raw string, urlID ids.ObjectID) {
	for _, vk := range allViewKeys {
		key := DiscussionSubject(raw) + vk
		showNSFW, showOffensive := vk[0] == '1', vk[1] == '1'
		patched := s.cache.UpdateRev(key, func(p page, rev respcache.Rev) page {
			p.stream, p.count = s.db.CommentStream(urlID, showNSFW, showOffensive)
			p.ups, p.downs = s.db.Votes(urlID)
			// Adopt the fresh generation stamp and an empty composed box:
			// the old ETag and pre-gzipped bytes die with the old
			// generation, atomically with the patch, so a client
			// revalidating with the stale ETag always gets the new body.
			// Composing (gzip included) happens lazily on the next hit,
			// never under the shard lock.
			p.rev = rev
			p.resp = &respBox{}
			return p
		})
		if !patched {
			s.cache.Invalidate(key)
		}
	}
}

// CacheStats exposes the response cache's hit/miss counters (zero when
// caching is disabled); the load benchmarks report them.
func (s *Server) CacheStats() (hits, misses uint64) { return s.cache.Stats() }

// rateLimitEntries reports the number of live rate-limit windows; the
// eviction tests pin that it stays bounded.
func (s *Server) rateLimitEntries() int {
	s.rlMu.Lock()
	defer s.rlMu.Unlock()
	return len(s.hits)
}

// writeHTML sends a finished rendering. io.WriteString reaches the
// ResponseWriter's WriteString fast path without copying body through
// fmt's reflection machinery.
func writeHTML(w http.ResponseWriter, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, body)
}

// bufPool recycles render buffers across requests: a page is built
// into a pooled bytes.Buffer whose backing array survives the request,
// so steady-state renders do zero growth reallocations. Buffers that
// ballooned (a giant page) are dropped rather than pinned forever.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= 1<<20 {
		bufPool.Put(b)
	}
}

// writeInt appends n to the page without the strconv.Itoa allocation.
func writeInt(b *bytes.Buffer, n int) {
	var scratch [20]byte
	b.Write(strconv.AppendInt(scratch[:0], int64(n), 10))
}

// ServeHTTP routes the app's pages.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.health != nil && r.URL.Path == "/healthz":
		s.health.Healthz(w, r)
	case s.health != nil && r.URL.Path == "/readyz":
		s.health.Readyz(w, r)
	case strings.HasPrefix(r.URL.Path, "/user/"):
		s.handleHome(w, r, strings.TrimPrefix(r.URL.Path, "/user/"))
	case r.URL.Path == "/discussion":
		s.handleDiscussion(w, r)
	case strings.HasPrefix(r.URL.Path, "/comment/"):
		s.handleComment(w, r, strings.TrimPrefix(r.URL.Path, "/comment/"))
	case r.URL.Path == "/trends" || r.URL.Path == "/trends/":
		s.handleTrends(w, r)
	case r.URL.Path == "/leaderboard" || r.URL.Path == "/leaderboard/":
		s.handleLeaderboard(w, r)
	case r.URL.Path == "/discussion/begin":
		if s.refuseWrite(w) {
			return
		}
		s.handleBegin(w, r)
	case r.URL.Path == "/discussion/vote":
		if s.refuseWrite(w) {
			return
		}
		s.handleVote(w, r)
	case r.URL.Path == "/discussion/comment":
		if s.refuseWrite(w) {
			return
		}
		s.handlePostComment(w, r)
	default:
		http.NotFound(w, r)
	}
}

// refuseWrite answers a mutating request on a read-only server.
func (s *Server) refuseWrite(w http.ResponseWriter) bool {
	if !s.readOnly {
		return false
	}
	http.Error(w, "read-only replica: write on the primary", http.StatusForbidden)
	return true
}

// rateLimit applies the per-URL request budget. The counter is keyed by
// the *target* URL, so a crawler that never revisits a page never trips
// it — exactly the loophole §3.2 reports. Cached responses still count:
// the real platform throttled by request, not by render cost.
//
// The request path only touches its own key under the limiter mutex;
// the O(n) expiry sweep that keeps the map bounded is amortized onto a
// background goroutine at most once per window, so no request ever
// pays for it. The window key is passed as prefix+rest and only
// concatenated past the disabled check, so an unlimited server (the
// zero-allocation hit path) never builds the string.
func (s *Server) rateLimit(w http.ResponseWriter, prefix, rest string) bool {
	if s.urlLimit <= 0 {
		return true
	}
	key := prefix + rest
	now := time.Now()
	if now.UnixNano()-s.lastSweep.Load() >= int64(s.urlWindow) {
		s.sweepRateLimits(now)
	}
	s.rlMu.Lock()
	hw := s.hits[key]
	if hw == nil || now.Sub(hw.start) >= s.urlWindow {
		hw = &hitWindow{start: now}
		s.hits[key] = hw
	}
	hw.n++
	n := hw.n
	s.rlMu.Unlock()
	if n > s.urlLimit {
		w.Header().Set("Retry-After", "60")
		http.Error(w, "rate limited", http.StatusTooManyRequests)
		return false
	}
	return true
}

// sweepRateLimits drops every rate-limit window that has lapsed, off
// the request critical path. Without the sweep a crawler visiting
// distinct URLs grows the map forever; with it the map holds only URLs
// requested within the last window or two. At most one sweep goroutine
// runs at a time, at most once per window.
//
// The sweep never holds the limiter lock for the O(n) scan: it swaps
// in a fresh map in O(1), filters the old map unlocked, and re-inserts
// the still-live windows in O(live). A request that lands between the
// swap and the merge starts a fresh window for its key; the merge
// keeps whichever window counted more hits, so the budget stays
// approximately enforced through the handover instead of requests
// stalling behind a million-entry scan.
func (s *Server) sweepRateLimits(now time.Time) {
	if !s.sweeping.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.sweeping.Store(false)
		s.rlMu.Lock()
		old := s.hits
		s.hits = make(map[string]*hitWindow, len(old)/2+1)
		s.rlMu.Unlock()
		live := make(map[string]*hitWindow)
		for k, win := range old {
			if now.Sub(win.start) < s.urlWindow {
				live[k] = win
			}
		}
		s.rlMu.Lock()
		for k, win := range live {
			if cur, ok := s.hits[k]; !ok || cur.n < win.n {
				s.hits[k] = win
			}
		}
		s.rlMu.Unlock()
		s.lastSweep.Store(now.UnixNano())
	}()
}

// handleHome renders a Dissenter user home page. Missing accounts get a
// ~150-byte not-found page; real accounts get a >= 10 kB page (the size
// side channel of §3.1). The commented-URL history comes from the
// store's write-maintained home list (DB.HomeURLs): the per-URL
// "does this session see any of my comments there?" filter is a
// counter read, not the old scan over every comment of every listed
// URL, and each listed row is a memoized fragment.
func (s *Server) handleHome(w http.ResponseWriter, r *http.Request, username string) {
	u := s.db.UserByUsername(username)
	if u == nil || !u.HasDissenter {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `<!DOCTYPE html><html><head><title>Dissenter</title></head><body><p>Sorry, that page doesn't exist.</p></body></html>`)
		return
	}
	sess := s.session(r)
	if s.cache == nil {
		writePage(w, page{simple: s.homeBody(u, sess)})
		return
	}
	var kb [128]byte
	key := appendSubjectKey(kb[:0], SubjectHome, username, sess)
	if p, ok := s.cache.GetBytes(key); ok {
		s.respond(w, r, p)
		return
	}
	p, _ := s.cache.GetOrFillRev(string(key), func(rev respcache.Rev) page {
		p := page{simple: s.homeBody(u, sess), rev: rev, resp: &respBox{}}
		p.resp.composed(&p)
		return p
	})
	s.respond(w, r, p)
}

// homeBody assembles a home page from the write-maintained listing and
// the memoized row fragments.
func (s *Server) homeBody(u *platform.User, sess Session) string {
	b := getBuf()
	defer putBuf(b)
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter</title></head><body>\n")
	b.WriteString(`<div class="profile" data-author-id="`)
	b.WriteString(u.AuthorID.String())
	b.WriteString("\">\n<h1 class=\"username\">@")
	b.WriteString(html.EscapeString(u.Username))
	b.WriteString("</h1>\n<h2 class=\"displayname\">")
	b.WriteString(html.EscapeString(u.DisplayName))
	b.WriteString("</h2>\n<p class=\"bio\">")
	b.WriteString(html.EscapeString(u.Bio))
	b.WriteString("</p>\n</div>\n<ul class=\"history\">\n")
	for _, cu := range s.db.HomeURLs(u.AuthorID, sess.ShowNSFW, sess.ShowOffensive) {
		b.WriteString(s.homeRow(cu))
	}
	b.WriteString("</ul>\n")
	b.WriteString(appBundle)
	b.WriteString("</body></html>\n")
	return b.String()
}

// homeRow returns the memoized commented-URL list item for a record.
func (s *Server) homeRow(cu *platform.CommentURL) string {
	return s.homeFrags.get(cu.ID, func() string {
		return `<li class="commented-url"><a href="/discussion?url=` +
			url.QueryEscape(cu.URL) + `">` + html.EscapeString(cu.URL) + "</a></li>\n"
	})
}

// handleDiscussion renders the comment page for ?url=. A miss costs
// O(delta), not O(page): the head is a memoized per-URL fragment, the
// visible-comment count comes from the fragment view's counters (no
// counting pass), and the comment stream is an O(1) snapshot of the
// view's pre-escaped concatenation (no render pass) — where the seed
// render walked the page twice and escaped every comment.
func (s *Server) handleDiscussion(w http.ResponseWriter, r *http.Request) {
	// queryValue + the Normalize already-normal fast path keep the
	// common ?url=https://... extraction allocation-free; escaped
	// queries decode exactly as r.URL.Query().Get would.
	raw := urlkit.Normalize(queryValue(r.URL.RawQuery, "url"))
	if raw == "" {
		http.Error(w, "missing url", http.StatusBadRequest)
		return
	}
	if !s.rateLimit(w, "discussion:", raw) {
		return
	}
	cu := s.db.URLByString(raw)
	if cu == nil {
		// A URL nobody has entered yet: an empty comment page inviting
		// the first comment (§2.1). Never cached — the key is
		// visitor-controlled, so a scan of novel URLs would evict the
		// whole hot set with copies of this constant page, and the
		// render is cheaper than the lookup that missed.
		writeHTML(w, "<!DOCTYPE html><html><head><title>Dissenter Discussion</title></head><body>\n"+
			`<div class="discussion new"><p>No comments yet. Be the first to dissent!</p></div>`+"\n"+
			"</body></html>\n")
		return
	}
	sess := s.session(r)
	if s.cache == nil {
		writePage(w, s.discussionPage(cu, sess.ShowNSFW, sess.ShowOffensive))
		return
	}
	var kb [512]byte
	key := appendSubjectKey(kb[:0], SubjectDiscussion, raw, sess)
	if p, ok := s.cache.GetBytes(key); ok {
		s.respond(w, r, p)
		return
	}
	p, _ := s.cache.GetOrFillRev(string(key), func(rev respcache.Rev) page {
		p := s.discussionPage(cu, sess.ShowNSFW, sess.ShowOffensive)
		p.rev = rev
		p.resp = &respBox{}
		// Compose eagerly: the response bytes and gzip variant are built
		// once on fill, not on the first hit that happens to want them.
		p.resp.composed(&p)
		return p
	})
	s.respond(w, r, p)
}

// discussionPage fills one structured discussion entry from the
// fragment view. Note: no flag in the stream distinguishes
// NSFW/offensive content — the crawler must infer labels
// differentially (§3.2).
func (s *Server) discussionPage(cu *platform.CommentURL, showNSFW, showOffensive bool) page {
	stream, count := s.db.CommentStream(cu.ID, showNSFW, showOffensive)
	ups, downs := s.db.Votes(cu.ID)
	return page{head: s.discussionHead(cu), ups: ups, downs: downs, count: count, stream: stream}
}

// discussionHead returns the memoized stable prefix of a discussion
// page: everything up to the mutable vote/count span.
func (s *Server) discussionHead(cu *platform.CommentURL) string {
	return s.discHeads.get(cu.ID, func() string {
		var b strings.Builder
		b.WriteString("<!DOCTYPE html><html><head><title>Dissenter Discussion</title></head><body>\n")
		b.WriteString(`<div class="discussion" data-commenturl-id="`)
		b.WriteString(cu.ID.String())
		b.WriteString("\">\n<h1 class=\"pagetitle\">")
		b.WriteString(html.EscapeString(cu.Title))
		b.WriteString("</h1>\n<p class=\"pagedescription\">")
		b.WriteString(html.EscapeString(cu.Description))
		b.WriteString("</p>\n")
		return b.String()
	})
}

// handleComment renders the single-comment page, including the
// commented-out commentAuthor JavaScript variable with otherwise
// undiscoverable user metadata (§3.2).
func (s *Server) handleComment(w http.ResponseWriter, r *http.Request, cidStr string) {
	cid, err := ids.Parse(strings.Trim(cidStr, "/"))
	if err != nil {
		http.NotFound(w, r)
		return
	}
	c := s.db.CommentByID(cid)
	sess := s.session(r)
	if c == nil || !visible(c, sess) {
		http.NotFound(w, r)
		return
	}
	author := s.db.UserByAuthorID(c.AuthorID)
	b := getBuf()
	defer putBuf(b)
	b.WriteString("<!DOCTYPE html><html><head><title>Dissenter Comment</title></head><body>\n")
	// The main row is the same fragment the discussion page shows,
	// memoized once in the platform view; replies use the "reply" class
	// and are rendered in place (uncached page, cold path).
	b.WriteString(s.db.CommentFragment(c))
	s.db.RangeCommentsOnURL(c.URLID, func(reply *platform.Comment) bool {
		if reply.ParentID == c.ID && visible(reply, sess) {
			b.Write(platform.AppendCommentRow(b.AvailableBuffer(), "reply", reply, false))
		}
		return true
	})
	if author != nil {
		meta := hiddenMeta{
			Username:    author.Username,
			Language:    author.Language,
			Permissions: author.Flags,
			ViewFilters: author.Filters,
		}
		blob, err := json.Marshal(meta)
		if err == nil {
			b.WriteString("<script>\n")
			// The assignment is commented out — dead code shipped to every
			// visitor, invisible in the DOM, and full of metadata.
			b.WriteString("// var commentAuthor = ")
			b.Write(blob)
			b.WriteString(";\nvar commentView = {\"ready\": true};\n")
			b.WriteString("</script>\n")
		}
	}
	b.WriteString("</body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(b.Bytes())
}

// hiddenMeta is the commentAuthor payload.
type hiddenMeta struct {
	Username    string               `json:"username"`
	Language    string               `json:"language"`
	Permissions platform.UserFlags   `json:"permissions"`
	ViewFilters platform.ViewFilters `json:"viewFilters"`
}

// appBundle is filler standing in for the web app's bundled JS/CSS; it is
// what puts real home pages over the 10 kB detection threshold.
var appBundle = func() string {
	var b strings.Builder
	b.WriteString("<script>/* dissenter app bundle */\n")
	for i := 0; i < 160; i++ {
		fmt.Fprintf(&b, "function module%04d(){return %d;} // padding padding padding\n", i, i)
	}
	b.WriteString("</script>\n")
	return b.String()
}()
