package dissenterweb

// The response cache's key space, in one place. Every cached page
// belongs to a subject — the store entity whose writes invalidate or
// patch it — and a subject's keys are its prefix plus a session
// viewKey ("00".."11", see viewKey). Writers and readers MUST build
// keys through these constants and helpers: the cachecoherence
// analyzer rejects fresh "disc|"/"home|"/"trends|"/"leader|" literals
// at call sites, so the PR 2/PR 5 coherence contract (every mutation
// pairs with exact-key coherence on these subjects) cannot drift one
// callsite at a time.
const (
	// SubjectDiscussion prefixes one URL's discussion page:
	// "disc|<raw-url>|<viewKey>".
	SubjectDiscussion = "disc|"
	// SubjectHome prefixes one author's home page:
	// "home|<username>|<viewKey>".
	SubjectHome = "home|"
	// SubjectTrends prefixes the sitewide trends page:
	// "trends|<viewKey>".
	SubjectTrends = "trends|"
	// SubjectLeaderboard is the single leaderboard entry's full key —
	// the page is session-independent, so it carries no viewKey.
	SubjectLeaderboard = "leader|"
)

// DiscussionSubject returns the cache-key prefix covering every
// session view of one discussion page.
func DiscussionSubject(raw string) string { return SubjectDiscussion + raw + "|" }

// HomeSubject returns the cache-key prefix covering every session
// view of one author's home page.
func HomeSubject(username string) string { return SubjectHome + username + "|" }

// TrendsKey returns the exact cache key for the trends page as seen
// by sess.
func TrendsKey(sess Session) string { return SubjectTrends + viewKey(sess) }

// appendSubjectKey composes "<prefix><subject>|<viewKey>" into dst —
// the same bytes as DiscussionSubject(subject)+viewKey(sess) et al.,
// but built into a caller-owned (stack) buffer so the serving hot path
// can probe the cache (respcache.GetBytes) without allocating a key
// string. Callers pass the Subject* constants as prefix, keeping the
// cachecoherence analyzer's single-source-of-truth rule intact.
func appendSubjectKey(dst []byte, prefix, subject string, sess Session) []byte {
	dst = append(dst, prefix...)
	dst = append(dst, subject...)
	dst = append(dst, '|')
	return appendViewKey(dst, sess)
}

// appendViewKey appends viewKey(sess) to dst without the string
// conversion.
func appendViewKey(dst []byte, sess Session) []byte {
	n, o := byte('0'), byte('0')
	if sess.ShowNSFW {
		n = '1'
	}
	if sess.ShowOffensive {
		o = '1'
	}
	return append(dst, n, o)
}
