package dissenterweb

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"dissenter/internal/htmlx"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
)

func TestTrendsHomepage(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := fetch(t, srv.URL+"/trends", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	items := htmlx.FindTags(body, "li")
	if len(items) == 0 {
		t.Fatal("no trending entries")
	}
	// Entries must be sorted by visible comment count, descending.
	var counts []int
	for _, li := range items {
		raw, ok := htmlx.Attr(li.Raw, "data-comments")
		if !ok {
			t.Fatalf("entry lacks data-comments: %q", li.Raw)
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("trends not sorted: %v", counts)
		}
	}
	// The top trend should agree with ground truth's busiest page.
	best := 0
	for _, cu := range allURLs(out.DB) {
		visible := 0
		for _, c := range out.DB.CommentsOnURL(cu.ID) {
			if !c.Hidden() {
				visible++
			}
		}
		if visible > best {
			best = visible
		}
	}
	if counts[0] != best {
		t.Errorf("top trend has %d comments, ground truth max %d", counts[0], best)
	}
}

func TestSubmitNewURL(t *testing.T) {
	_, srv, _ := newIsolatedServer(t)
	novel := "https://example.org/breaking/totally-new-story"

	// Before submission: the invitation page, no commenturl-id.
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	if !strings.Contains(body, "No comments yet") {
		t.Fatal("unsubmitted URL should render invitation")
	}

	// Submission redirects to the (now registered) comment page.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(novel))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("begin status = %d, want 302", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.Contains(loc, url.QueryEscape(novel)) {
		t.Errorf("redirect location = %q", loc)
	}

	// After submission: a real comment page with a commenturl-id and zero
	// comments ("this page contains no comments, but allows new users ...
	// to make comments", §2.1).
	_, body = fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	id, ok := htmlx.Attr(body, "data-commenturl-id")
	if !ok || len(id) != 24 {
		t.Fatalf("submitted URL lacks commenturl-id: %q", id)
	}
	// Resubmission is idempotent: same id.
	resp, err = client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(novel))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body = fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	id2, _ := htmlx.Attr(body, "data-commenturl-id")
	if id2 != id {
		t.Errorf("resubmission changed id: %s -> %s", id, id2)
	}
}

func TestSubmitExistingURLKeepsID(t *testing.T) {
	_, srv := newTestServer(t)
	existing := allURLs(out.DB)[0]
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(existing.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(existing.URL), "")
	if id, _ := htmlx.Attr(body, "data-commenturl-id"); id != existing.ID.String() {
		t.Errorf("existing URL id changed: %s vs %s", id, existing.ID)
	}
}

func TestSubmitCovertAnchor(t *testing.T) {
	// §6: "The URL need not exist, can use any arbitrary scheme" — the
	// covert-channel property.
	_, srv, _ := newIsolatedServer(t)
	anchor := "dissenter://secret/meeting-point-7"
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(anchor))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(anchor), "")
	if _, ok := htmlx.Attr(body, "data-commenturl-id"); !ok {
		t.Error("arbitrary-scheme anchor did not get a comment page")
	}
}

func TestBeginMissingURL(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := fetch(t, srv.URL+"/discussion/begin", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// TestTrendsTieBreakNewestFirst pins the documented tie-break: among
// URLs with equal visible comment counts, the most recently first-seen
// URL ranks first.
func TestTrendsTieBreakNewestFirst(t *testing.T) {
	gen := ids.NewGenerator(0x7E5)
	base := time.Date(2020, 2, 1, 12, 0, 0, 0, time.UTC)
	author := gen.NewAt(base)
	user := &platform.User{
		GabID: 1, Username: "tiebreaker", HasDissenter: true, AuthorID: author,
	}
	// Three URLs, one visible comment each (a three-way tie), first seen
	// in an order that differs from their URL-string order.
	firstSeen := []time.Time{
		base.Add(2 * time.Hour), // middle
		base.Add(4 * time.Hour), // newest
		base.Add(1 * time.Hour), // oldest
	}
	addrs := []string{
		"https://tie.example/a",
		"https://tie.example/b",
		"https://tie.example/c",
	}
	var urls []*platform.CommentURL
	var comments []*platform.Comment
	for i, fs := range firstSeen {
		cu := &platform.CommentURL{ID: gen.NewAt(fs), URL: addrs[i], FirstSeen: fs}
		urls = append(urls, cu)
		comments = append(comments, &platform.Comment{
			ID: gen.NewAt(fs.Add(time.Minute)), URLID: cu.ID, AuthorID: author,
			Text: "tie comment", CreatedAt: fs.Add(time.Minute),
		})
	}
	db := platform.New([]*platform.User{user}, urls, comments, nil)
	s := NewServer(db, WithURLRateLimit(0, 0))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	_, body := fetch(t, srv.URL+"/trends", "")
	want := []string{addrs[1], addrs[0], addrs[2]} // newest first-seen first
	items := htmlx.FindTags(body, "li")
	if len(items) != len(want) {
		t.Fatalf("trends lists %d entries, want %d", len(items), len(want))
	}
	for i, li := range items {
		if !strings.Contains(li.Text, url.QueryEscape(want[i])) {
			t.Errorf("position %d: got %q, want link to %q", i, li.Text, want[i])
		}
	}
}

// TestURLCanonicalizationUnifiesRecords pins that trivially different
// encodings of one address share a single CommentURL record, one vote
// tally, one cache subject, and one rate-limit bucket.
func TestURLCanonicalizationUnifiesRecords(t *testing.T) {
	_, srv, priv := newIsolatedServer(t)
	canonical := "https://example.org/canon/one-story"
	variants := []string{
		"HTTPS://EXAMPLE.ORG/canon/one-story",
		"https://example.org:443/canon/one-story",
		"https://example.org/canon/one-story#comments",
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	before := len(allURLs(priv.DB))
	for _, v := range append([]string{canonical}, variants...) {
		resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(v))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := len(allURLs(priv.DB)) - before; got != 1 {
		t.Fatalf("submitting 4 encodings minted %d records, want 1", got)
	}
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(canonical), "")
	id, _ := htmlx.Attr(body, "data-commenturl-id")
	for _, v := range variants {
		_, vb := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(v), "")
		if vid, _ := htmlx.Attr(vb, "data-commenturl-id"); vid != id {
			t.Errorf("variant %q resolved to id %q, want %q", v, vid, id)
		}
	}

	// Votes through any encoding land on the one tally.
	for _, v := range variants {
		resp, err := client.Get(srv.URL + "/discussion/vote?url=" + url.QueryEscape(v) + "&dir=up")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	cu := priv.DB.URLByString(canonical)
	if cu == nil {
		t.Fatal("canonical record missing")
	}
	if ups, _ := priv.DB.Votes(cu.ID); ups != len(variants) {
		t.Errorf("tally = %d ups, want %d (votes split across encodings?)", ups, len(variants))
	}
}

// TestRateLimitBucketSharedAcrossEncodings pins that request budgets
// cannot be multiplied by re-encoding the target URL.
func TestRateLimitBucketSharedAcrossEncodings(t *testing.T) {
	_, srv, priv := newIsolatedServer(t, WithURLRateLimit(3, time.Hour))
	cu := busyURL(t, priv)
	shouty := strings.Replace(cu.URL, "https://", "HTTPS://", 1)
	fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(cu.URL), "")
	fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(shouty), "")
	fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(cu.URL), "")
	resp, _ := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(shouty), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("4th request via re-encoding status = %d, want 429", resp.StatusCode)
	}
}
