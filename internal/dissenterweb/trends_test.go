package dissenterweb

import (
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"dissenter/internal/htmlx"
)

func TestTrendsHomepage(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := fetch(t, srv.URL+"/trends", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	items := htmlx.FindTags(body, "li")
	if len(items) == 0 {
		t.Fatal("no trending entries")
	}
	// Entries must be sorted by visible comment count, descending.
	var counts []int
	for _, li := range items {
		raw, ok := htmlx.Attr(li.Raw, "data-comments")
		if !ok {
			t.Fatalf("entry lacks data-comments: %q", li.Raw)
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("trends not sorted: %v", counts)
		}
	}
	// The top trend should agree with ground truth's busiest page.
	best := 0
	for _, cu := range out.DB.URLs() {
		visible := 0
		for _, c := range out.DB.CommentsOnURL(cu.ID) {
			if !c.Hidden() {
				visible++
			}
		}
		if visible > best {
			best = visible
		}
	}
	if counts[0] != best {
		t.Errorf("top trend has %d comments, ground truth max %d", counts[0], best)
	}
}

func TestSubmitNewURL(t *testing.T) {
	_, srv, _ := newIsolatedServer(t)
	novel := "https://example.org/breaking/totally-new-story"

	// Before submission: the invitation page, no commenturl-id.
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	if !strings.Contains(body, "No comments yet") {
		t.Fatal("unsubmitted URL should render invitation")
	}

	// Submission redirects to the (now registered) comment page.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(novel))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("begin status = %d, want 302", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.Contains(loc, url.QueryEscape(novel)) {
		t.Errorf("redirect location = %q", loc)
	}

	// After submission: a real comment page with a commenturl-id and zero
	// comments ("this page contains no comments, but allows new users ...
	// to make comments", §2.1).
	_, body = fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	id, ok := htmlx.Attr(body, "data-commenturl-id")
	if !ok || len(id) != 24 {
		t.Fatalf("submitted URL lacks commenturl-id: %q", id)
	}
	// Resubmission is idempotent: same id.
	resp, err = client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(novel))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body = fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(novel), "")
	id2, _ := htmlx.Attr(body, "data-commenturl-id")
	if id2 != id {
		t.Errorf("resubmission changed id: %s -> %s", id, id2)
	}
}

func TestSubmitExistingURLKeepsID(t *testing.T) {
	_, srv := newTestServer(t)
	existing := out.DB.URLs()[0]
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(existing.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(existing.URL), "")
	if id, _ := htmlx.Attr(body, "data-commenturl-id"); id != existing.ID.String() {
		t.Errorf("existing URL id changed: %s vs %s", id, existing.ID)
	}
}

func TestSubmitCovertAnchor(t *testing.T) {
	// §6: "The URL need not exist, can use any arbitrary scheme" — the
	// covert-channel property.
	_, srv, _ := newIsolatedServer(t)
	anchor := "dissenter://secret/meeting-point-7"
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(srv.URL + "/discussion/begin?url=" + url.QueryEscape(anchor))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	_, body := fetch(t, srv.URL+"/discussion?url="+url.QueryEscape(anchor), "")
	if _, ok := htmlx.Attr(body, "data-commenturl-id"); !ok {
		t.Error("arbitrary-scheme anchor did not get a comment page")
	}
}

func TestBeginMissingURL(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := fetch(t, srv.URL+"/discussion/begin", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}
