package youtube

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// The paper drives Selenium because the fields it needs "reside in large
// blocks of JavaScript". Our crawler does the moral equivalent for the
// simulated pages: fetch the HTML, locate the ytInitialData assignment,
// and decode the embedded object.

// PageData is the metadata the crawler recovers from one YouTube page.
type PageData struct {
	Kind             Kind
	Title            string
	Owner            string
	Status           Status
	CommentsDisabled bool
}

// ErrNotYouTubePage is returned when the fetched page has no metadata
// blob to mine.
var ErrNotYouTubePage = errors.New("youtube: page contains no ytInitialData blob")

// Crawler fetches simulated YouTube pages. Construct with NewCrawler.
type Crawler struct {
	base       string
	httpClient *http.Client
}

// NewCrawler builds a crawler that rewrites YouTube URLs onto the
// simulator at base (e.g. an httptest.Server URL). A nil client gets a
// 10-second timeout default.
func NewCrawler(base string, client *http.Client) *Crawler {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Crawler{base: strings.TrimSuffix(base, "/"), httpClient: client}
}

// Fetch retrieves and mines one YouTube URL (in its original
// youtube.com/youtu.be form; the crawler maps it onto the simulator).
func (c *Crawler) Fetch(ctx context.Context, rawurl string) (PageData, error) {
	target := c.base + pathKey(rawurl)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return PageData{}, fmt.Errorf("youtube: build request: %w", err)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return PageData{}, fmt.Errorf("youtube: fetch %s: %w", rawurl, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return PageData{Status: StatusUnavailable, Kind: KindVideo}, nil
	}
	if resp.StatusCode != http.StatusOK {
		return PageData{}, fmt.Errorf("youtube: fetch %s: HTTP %d", rawurl, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return PageData{}, fmt.Errorf("youtube: read %s: %w", rawurl, err)
	}
	return ParsePage(string(body))
}

// ParsePage extracts metadata from the HTML of a simulated YouTube page.
func ParsePage(html string) (PageData, error) {
	const marker = "var ytInitialData = "
	start := strings.Index(html, marker)
	if start < 0 {
		return PageData{}, ErrNotYouTubePage
	}
	rest := html[start+len(marker):]
	end := strings.Index(rest, "};")
	if end < 0 {
		return PageData{}, ErrNotYouTubePage
	}
	blob := rest[:end+1]
	var raw struct {
		PageKind          string `json:"pageKind"`
		VideoTitle        string `json:"videoTitle"`
		OwnerName         string `json:"ownerName"`
		PlayabilityStatus string `json:"playabilityStatus"`
		CommentsDisabled  bool   `json:"commentsDisabled"`
	}
	if err := json.Unmarshal([]byte(blob), &raw); err != nil {
		return PageData{}, fmt.Errorf("youtube: decode ytInitialData: %w", err)
	}
	return PageData{
		Kind:             Kind(raw.PageKind),
		Title:            raw.VideoTitle,
		Owner:            raw.OwnerName,
		Status:           Status(raw.PlayabilityStatus),
		CommentsDisabled: raw.CommentsDisabled,
	}, nil
}

// Summary aggregates a YouTube crawl the way §4.2.2 reports it.
type Summary struct {
	Total    int
	ByKind   map[Kind]int
	ByStatus map[Status]int
	// ActiveCommentsDisabled counts active videos whose YouTube comment
	// section is turned off — Dissenter's core value proposition.
	ActiveCommentsDisabled int
	// CommentedByOwner counts commented videos per content owner.
	CommentedByOwner map[string]int
}

// CrawlAll fetches every URL and aggregates the results. Fetch errors are
// counted as generic unavailable, mirroring the paper's re-request-then-
// classify handling.
func (c *Crawler) CrawlAll(ctx context.Context, urls []string) (Summary, error) {
	sum := Summary{
		ByKind:           map[Kind]int{},
		ByStatus:         map[Status]int{},
		CommentedByOwner: map[string]int{},
	}
	for _, u := range urls {
		if ctx.Err() != nil {
			return sum, ctx.Err()
		}
		pd, err := c.Fetch(ctx, u)
		if err != nil {
			if errors.Is(err, ErrNotYouTubePage) {
				pd = PageData{Status: StatusUnavailable, Kind: KindVideo}
			} else {
				return sum, err
			}
		}
		sum.Total++
		sum.ByKind[pd.Kind]++
		sum.ByStatus[pd.Status]++
		if pd.Status == StatusActive {
			if pd.CommentsDisabled {
				sum.ActiveCommentsDisabled++
			}
			if pd.Owner != "" {
				sum.CommentedByOwner[pd.Owner]++
			}
		}
	}
	return sum, nil
}

// VideoID extracts the v= parameter of a YouTube watch URL, or the
// youtu.be path component.
func VideoID(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil {
		return ""
	}
	if strings.HasSuffix(u.Hostname(), "youtu.be") {
		return strings.TrimPrefix(u.Path, "/")
	}
	return u.Query().Get("v")
}
