// Package youtube simulates the slice of YouTube the paper crawls in
// §3.3: pages whose useful metadata (video title, uploader, availability,
// comment-enabled state) lives inside large JavaScript blobs rather than
// in static HTML — which is precisely why Dissenter's own title/
// description mining fails on YouTube URLs and why the paper had to
// crawl the pages with a JS-capable browser. Our crawler (Crawler, in
// this package) extracts the same fields from the simulated JS blob.
package youtube

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Kind classifies a YouTube URL (§3.3): a single video, a user homepage,
// or a channel.
type Kind string

// The three content kinds.
const (
	KindVideo   Kind = "video"
	KindUser    Kind = "user"
	KindChannel Kind = "channel"
)

// Status is a video's availability (§4.2.2).
type Status string

// Availability states with the paper's removal taxonomy.
const (
	StatusActive      Status = "active"
	StatusUnavailable Status = "unavailable" // generic "Video Unavailable"
	StatusPrivate     Status = "private"
	StatusTerminated  Status = "terminated" // uploader account terminated
	StatusHateRemoved Status = "hate_removed"
)

// Video is the ground-truth metadata behind one YouTube URL.
type Video struct {
	URL              string
	Kind             Kind
	Title            string
	Owner            string // content-owner (uploader / channel name)
	Status           Status
	CommentsDisabled bool
}

// Site is the simulated YouTube deployment: a set of URLs with metadata,
// served over HTTP with the metadata embedded in JavaScript.
type Site struct {
	mu     sync.RWMutex
	videos map[string]Video // keyed by URL path+query (scheme-insensitive)
	// ownerTotals records the total number of videos each owner has on
	// the platform (commented-on ones are a subset); the per-owner
	// normalization of §4.2.2 needs it.
	ownerTotals map[string]int
}

// NewSite builds a Site from ground-truth videos and per-owner totals.
func NewSite(videos []Video, ownerTotals map[string]int) *Site {
	s := &Site{videos: make(map[string]Video, len(videos)), ownerTotals: ownerTotals}
	for _, v := range videos {
		s.videos[pathKey(v.URL)] = v
	}
	return s
}

// pathKey canonicalizes a YouTube URL to its path+query so that
// https://www.youtube.com/watch?v=x, http://youtube.com/watch?v=x and
// https://youtu.be/x resolve consistently.
func pathKey(raw string) string {
	s := raw
	for _, prefix := range []string{"https://", "http://"} {
		s = strings.TrimPrefix(s, prefix)
	}
	for _, host := range []string{"www.youtube.com", "m.youtube.com", "youtube.com"} {
		if rest, ok := strings.CutPrefix(s, host); ok {
			return rest
		}
	}
	if rest, ok := strings.CutPrefix(s, "youtu.be/"); ok {
		return "/watch?v=" + rest
	}
	return s
}

// Lookup returns the metadata for a URL.
func (s *Site) Lookup(raw string) (Video, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.videos[pathKey(raw)]
	return v, ok
}

// OwnerTotal returns the total platform-wide video count for an owner.
func (s *Site) OwnerTotal(owner string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ownerTotals[owner]
}

// Len returns the number of known URLs.
func (s *Site) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.videos)
}

// ServeHTTP renders the page for any known URL. The interesting payload —
// title, owner, availability — is inside a JavaScript ytInitialData-style
// blob, matching the real page structure that defeats naive HTML mining.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Path
	if r.URL.RawQuery != "" {
		key += "?" + r.URL.RawQuery
	}
	s.mu.RLock()
	v, ok := s.videos[key]
	s.mu.RUnlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, renderPage(v))
}

// renderPage produces HTML in which the static body is useless (title is
// just "/watch") and the real data hides in a script element.
func renderPage(v Video) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>/watch</title></head><body>\n")
	b.WriteString("<div id=\"player\"></div>\n")
	b.WriteString("<script>var ytInitialData = {")
	fmt.Fprintf(&b, "%q: %q, ", "pageKind", string(v.Kind))
	fmt.Fprintf(&b, "%q: %q, ", "videoTitle", v.Title)
	fmt.Fprintf(&b, "%q: %q, ", "ownerName", v.Owner)
	fmt.Fprintf(&b, "%q: %q, ", "playabilityStatus", string(v.Status))
	fmt.Fprintf(&b, "%q: %v", "commentsDisabled", v.CommentsDisabled)
	b.WriteString("};</script>\n")
	switch v.Status {
	case StatusActive:
		b.WriteString("<noscript>This page requires JavaScript.</noscript>\n")
	case StatusPrivate:
		b.WriteString("<div class=\"message\">This video is private.</div>\n")
	case StatusTerminated:
		b.WriteString("<div class=\"message\">This video is no longer available because the account associated with this video has been terminated.</div>\n")
	case StatusHateRemoved:
		b.WriteString("<div class=\"message\">This video has been removed for violating our policy on hate speech.</div>\n")
	default:
		b.WriteString("<div class=\"message\">Video unavailable.</div>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
