package youtube

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func testSite() *Site {
	videos := []Video{
		{URL: "https://www.youtube.com/watch?v=abc123", Kind: KindVideo,
			Title: "Border Debate", Owner: "Fox News", Status: StatusActive},
		{URL: "https://youtu.be/def456", Kind: KindVideo,
			Title: "Economy Report", Owner: "CNN", Status: StatusActive, CommentsDisabled: true},
		{URL: "https://www.youtube.com/watch?v=gone01", Kind: KindVideo,
			Title: "", Owner: "Channel 001", Status: StatusTerminated},
		{URL: "https://www.youtube.com/watch?v=hate01", Kind: KindVideo,
			Title: "", Owner: "Channel 002", Status: StatusHateRemoved},
		{URL: "https://www.youtube.com/channel/UCxyz", Kind: KindChannel,
			Title: "Channel Page", Owner: "Channel 003", Status: StatusActive},
	}
	return NewSite(videos, map[string]int{"Fox News": 100, "CNN": 1000})
}

func TestLookup(t *testing.T) {
	s := testSite()
	v, ok := s.Lookup("https://www.youtube.com/watch?v=abc123")
	if !ok || v.Owner != "Fox News" {
		t.Fatalf("Lookup failed: %+v %v", v, ok)
	}
	// Scheme and host variants resolve to the same video.
	for _, u := range []string{
		"http://www.youtube.com/watch?v=abc123",
		"https://youtube.com/watch?v=abc123",
		"https://m.youtube.com/watch?v=abc123",
	} {
		if _, ok := s.Lookup(u); !ok {
			t.Errorf("variant %q did not resolve", u)
		}
	}
	// youtu.be links resolve as watch URLs.
	if _, ok := s.Lookup("https://youtu.be/def456"); !ok {
		t.Error("youtu.be link did not resolve")
	}
	if _, ok := s.Lookup("https://www.youtube.com/watch?v=missing"); ok {
		t.Error("missing video resolved")
	}
}

func TestOwnerTotals(t *testing.T) {
	s := testSite()
	if s.OwnerTotal("Fox News") != 100 || s.OwnerTotal("CNN") != 1000 {
		t.Error("owner totals wrong")
	}
	if s.OwnerTotal("nobody") != 0 {
		t.Error("unknown owner should be 0")
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestServeAndCrawl(t *testing.T) {
	s := testSite()
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := NewCrawler(srv.URL, srv.Client())
	ctx := context.Background()

	pd, err := c.Fetch(ctx, "https://www.youtube.com/watch?v=abc123")
	if err != nil {
		t.Fatal(err)
	}
	if pd.Title != "Border Debate" || pd.Owner != "Fox News" ||
		pd.Status != StatusActive || pd.Kind != KindVideo || pd.CommentsDisabled {
		t.Errorf("crawled metadata wrong: %+v", pd)
	}

	pd, err = c.Fetch(ctx, "https://youtu.be/def456")
	if err != nil {
		t.Fatal(err)
	}
	if !pd.CommentsDisabled {
		t.Error("comments-disabled flag lost in crawl")
	}

	// Unknown URLs come back as generic unavailable, like a dead video.
	pd, err = c.Fetch(ctx, "https://www.youtube.com/watch?v=nope")
	if err != nil {
		t.Fatal(err)
	}
	if pd.Status != StatusUnavailable {
		t.Errorf("missing video status = %v", pd.Status)
	}
}

func TestCrawlAll(t *testing.T) {
	s := testSite()
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := NewCrawler(srv.URL, srv.Client())
	urls := []string{
		"https://www.youtube.com/watch?v=abc123",
		"https://youtu.be/def456",
		"https://www.youtube.com/watch?v=gone01",
		"https://www.youtube.com/watch?v=hate01",
		"https://www.youtube.com/channel/UCxyz",
	}
	sum, err := c.CrawlAll(context.Background(), urls)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 5 {
		t.Errorf("Total = %d", sum.Total)
	}
	if sum.ByKind[KindVideo] != 4 || sum.ByKind[KindChannel] != 1 {
		t.Errorf("ByKind = %v", sum.ByKind)
	}
	if sum.ByStatus[StatusActive] != 3 || sum.ByStatus[StatusTerminated] != 1 || sum.ByStatus[StatusHateRemoved] != 1 {
		t.Errorf("ByStatus = %v", sum.ByStatus)
	}
	if sum.ActiveCommentsDisabled != 1 {
		t.Errorf("ActiveCommentsDisabled = %d", sum.ActiveCommentsDisabled)
	}
	if sum.CommentedByOwner["Fox News"] != 1 {
		t.Errorf("CommentedByOwner = %v", sum.CommentedByOwner)
	}
}

func TestParsePageErrors(t *testing.T) {
	if _, err := ParsePage("<html>no data</html>"); err == nil {
		t.Error("pages without the blob should error")
	}
	if _, err := ParsePage("var ytInitialData = {broken"); err == nil {
		t.Error("truncated blob should error")
	}
}

func TestRenderPageHidesDataFromStaticHTML(t *testing.T) {
	// The page <title> must be the useless "/watch" — the real title only
	// exists inside the JS blob. This is the property that forces the
	// §3.3 crawling approach.
	page := renderPage(Video{Kind: KindVideo, Title: "Secret Title", Owner: "X", Status: StatusActive})
	if !strings.Contains(page, "<title>/watch</title>") {
		t.Error("static title should be /watch")
	}
	head := page[:strings.Index(page, "<script>")]
	if strings.Contains(head, "Secret Title") {
		t.Error("real title leaked into static HTML")
	}
}

func TestVideoID(t *testing.T) {
	cases := map[string]string{
		"https://www.youtube.com/watch?v=abc123": "abc123",
		"https://youtu.be/xyz":                   "xyz",
		"https://example.com/watch?v=q":          "q",
		"::bad::":                                "",
	}
	for in, want := range cases {
		if got := VideoID(in); got != want {
			t.Errorf("VideoID(%q) = %q, want %q", in, got, want)
		}
	}
}
