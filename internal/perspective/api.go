package perspective

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The wire format mirrors the real Perspective API's comments:analyze
// method closely enough that the study's client code is shaped like the
// real thing: a JSON request naming requested attributes, a JSON response
// with per-attribute summary scores.

// AnalyzeRequest is the comments:analyze request body.
type AnalyzeRequest struct {
	Comment struct {
		Text string `json:"text"`
	} `json:"comment"`
	RequestedAttributes map[Model]struct{} `json:"requestedAttributes"`
}

// AnalyzeResponse is the comments:analyze response body.
type AnalyzeResponse struct {
	AttributeScores map[Model]AttributeScore `json:"attributeScores"`
}

// AttributeScore carries one model's result.
type AttributeScore struct {
	SummaryScore struct {
		Value float64 `json:"value"`
	} `json:"summaryScore"`
}

// apiError is the error envelope the endpoint returns.
type apiError struct {
	Error struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// Handler returns an http.Handler serving POST /v1/comments:analyze.
// It enforces a per-instance QPS limit when qps > 0, answering 429 when
// exhausted — the client's backoff path needs something to exercise.
func Handler(qps int) http.Handler {
	var lim *rateLimiter
	if qps > 0 {
		lim = newRateLimiter(qps)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/comments:analyze", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeAPIError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		if lim != nil && !lim.allow() {
			w.Header().Set("Retry-After", "1")
			writeAPIError(w, http.StatusTooManyRequests, "rate limit exceeded")
			return
		}
		var req AnalyzeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeAPIError(w, http.StatusBadRequest, "bad request body")
			return
		}
		if len(req.RequestedAttributes) == 0 {
			writeAPIError(w, http.StatusBadRequest, "no requested attributes")
			return
		}
		resp := AnalyzeResponse{AttributeScores: map[Model]AttributeScore{}}
		for m := range req.RequestedAttributes {
			if !m.Valid() {
				writeAPIError(w, http.StatusBadRequest, fmt.Sprintf("unknown attribute %q", m))
				return
			}
			var as AttributeScore
			as.SummaryScore.Value = Score(m, req.Comment.Text)
			resp.AttributeScores[m] = as
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Connection-level failure; nothing more to do.
			return
		}
	})
	return mux
}

func writeAPIError(w http.ResponseWriter, code int, msg string) {
	var e apiError
	e.Error.Code = code
	e.Error.Message = msg
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(e)
}

// rateLimiter is a coarse fixed-window QPS limiter.
type rateLimiter struct {
	mu     sync.Mutex
	qps    int
	window time.Time
	used   int
}

func newRateLimiter(qps int) *rateLimiter { return &rateLimiter{qps: qps} }

func (l *rateLimiter) allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	if now.Sub(l.window) >= time.Second {
		l.window = now
		l.used = 0
	}
	if l.used >= l.qps {
		return false
	}
	l.used++
	return true
}

// Client calls a Perspective-style endpoint. The zero value is unusable;
// construct with NewClient.
type Client struct {
	baseURL    string
	httpClient *http.Client
	maxRetries int
}

// NewClient builds a client for the endpoint at baseURL (no trailing
// slash). A nil httpClient uses a default with a 10s timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{baseURL: baseURL, httpClient: httpClient, maxRetries: 5}
}

// ErrRateLimited is returned when the endpoint keeps answering 429 past
// the retry budget.
var ErrRateLimited = errors.New("perspective: rate limited")

// Analyze scores one comment with the requested models over HTTP,
// retrying 429s with linear backoff.
func (c *Client) Analyze(ctx context.Context, text string, models []Model) (map[Model]float64, error) {
	var req AnalyzeRequest
	req.Comment.Text = text
	req.RequestedAttributes = make(map[Model]struct{}, len(models))
	for _, m := range models {
		req.RequestedAttributes[m] = struct{}{}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("perspective: encode request: %w", err)
	}
	for attempt := 0; ; attempt++ {
		scores, wait, err := c.post(ctx, body)
		if err == nil {
			return scores, nil
		}
		if wait <= 0 || attempt >= c.maxRetries {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// post performs one request. On a retryable failure it returns the delay
// to wait before the next attempt (honoring Retry-After when present).
func (c *Client) post(ctx context.Context, body []byte) (map[Model]float64, time.Duration, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.baseURL+"/v1/comments:analyze", bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("perspective: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient.Do(httpReq)
	if err != nil {
		return nil, 0, fmt.Errorf("perspective: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		wait := 200 * time.Millisecond
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				wait = time.Duration(secs) * time.Second
			}
		}
		return nil, wait, ErrRateLimited
	}
	if resp.StatusCode != http.StatusOK {
		var e apiError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return nil, 0, fmt.Errorf("perspective: HTTP %d: %s", resp.StatusCode, e.Error.Message)
	}
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, fmt.Errorf("perspective: decode response: %w", err)
	}
	scores := make(map[Model]float64, len(out.AttributeScores))
	for m, as := range out.AttributeScores {
		scores[m] = as.SummaryScore.Value
	}
	return scores, 0, nil
}
