package perspective

import (
	"context"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"dissenter/internal/lexicon"
)

func slur() string  { return lexicon.Hatebase().WordsByCategory(lexicon.CategorySlur)[0] }
func slur2() string { return lexicon.Hatebase().WordsByCategory(lexicon.CategorySlur)[1] }

func TestScoreBounds(t *testing.T) {
	texts := []string{
		"", "hello", "THIS IS SHOUTING!!!", "you are an idiot and a fraud",
		"great article thanks", slur() + " " + slur2(),
	}
	for _, m := range AllModels() {
		for _, s := range texts {
			v := Score(m, s)
			if v < 0 || v > 1 {
				t.Errorf("Score(%s, %q) = %v out of range", m, s, v)
			}
		}
	}
}

func TestScoreDeterministic(t *testing.T) {
	s := "you are a pathetic idiot and the author is a fraud"
	for _, m := range AllModels() {
		if Score(m, s) != Score(m, s) {
			t.Errorf("%s not deterministic", m)
		}
	}
}

func TestSevereToxicityOrdering(t *testing.T) {
	hateful := "the " + slur() + " must be destroyed, exterminate them all"
	insulting := "you are a stupid pathetic idiot"
	profaneOnly := "damn, that's cool as hell"
	praise := "great article, thanks for the insightful report"
	hs := Score(SevereToxicity, hateful)
	is := Score(SevereToxicity, insulting)
	ps := Score(SevereToxicity, profaneOnly)
	gs := Score(SevereToxicity, praise)
	if !(hs > is && is > ps && ps >= gs) {
		t.Errorf("ordering broken: hate=%.3f insult=%.3f profane=%.3f praise=%.3f", hs, is, ps, gs)
	}
	if hs < 0.7 {
		t.Errorf("hateful comment severe toxicity %.3f too low", hs)
	}
	// The model must be "less sensitive to positive uses of profanity".
	if ps > 0.4 {
		t.Errorf("positive profanity severe toxicity %.3f too high", ps)
	}
}

func TestLikelyToRejectMoreSensitive(t *testing.T) {
	// Mildly rude comments should trip LIKELY_TO_REJECT well before
	// SEVERE_TOXICITY.
	mild := "what a dumb take, you people are sheep"
	ltr := Score(LikelyToReject, mild)
	sev := Score(SevereToxicity, mild)
	if ltr <= sev {
		t.Errorf("LIKELY_TO_REJECT (%.3f) should exceed SEVERE_TOXICITY (%.3f) on mild rudeness", ltr, sev)
	}
}

func TestObsceneTracksProfanity(t *testing.T) {
	profane := "damn hell crap bloody bollocks"
	clean := "the committee will meet again next month"
	if Score(Obscene, profane) <= Score(Obscene, clean) {
		t.Error("OBSCENE does not track profanity")
	}
	if Score(Obscene, profane) < 0.5 {
		t.Errorf("OBSCENE on dense profanity = %.3f", Score(Obscene, profane))
	}
}

func TestAttackOnAuthorNeedsAuthor(t *testing.T) {
	attack := "the author is a pathetic liar and a fraud"
	insultNoAuthor := "that politician is a pathetic liar and a fraud"
	neutral := "the author makes several interesting points"
	a := Score(AttackOnAuthor, attack)
	b := Score(AttackOnAuthor, insultNoAuthor)
	c := Score(AttackOnAuthor, neutral)
	if !(a > b && a > c) {
		t.Errorf("author-targeted attack should dominate: %.3f %.3f %.3f", a, b, c)
	}
	if a < 0.5 {
		t.Errorf("direct author attack = %.3f, want >= 0.5", a)
	}
	if c > 0.4 {
		t.Errorf("neutral author mention = %.3f, want low", c)
	}
}

func TestEmptyCommentScoresZero(t *testing.T) {
	for _, m := range AllModels() {
		if Score(m, "") != 0 {
			t.Errorf("Score(%s, empty) != 0", m)
		}
	}
}

func TestModelValid(t *testing.T) {
	for _, m := range AllModels() {
		if !m.Valid() {
			t.Errorf("%s reported invalid", m)
		}
	}
	if Model("TOXICITY_9000").Valid() {
		t.Error("unknown model reported valid")
	}
}

func TestScoreAll(t *testing.T) {
	got := ScoreAll("you idiot", AllModels())
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	srv := httptest.NewServer(Handler(0))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	text := "the author is a pathetic fraud"
	scores, err := client.Analyze(context.Background(), text, AllModels())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllModels() {
		want := Score(m, text)
		if scores[m] != want {
			t.Errorf("%s over HTTP = %v, want %v", m, scores[m], want)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	srv := httptest.NewServer(Handler(0))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	if _, err := client.Analyze(context.Background(), "x", nil); err == nil {
		t.Error("no attributes should error")
	}
	if _, err := client.Analyze(context.Background(), "x", []Model{"NOPE"}); err == nil {
		t.Error("unknown attribute should error")
	}
}

func TestHTTPRateLimitRetry(t *testing.T) {
	srv := httptest.NewServer(Handler(1)) // 1 QPS
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()
	// Two quick requests: the second must eventually succeed via retry.
	if _, err := client.Analyze(ctx, "first", []Model{SevereToxicity}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Analyze(ctx, "second", []Model{SevereToxicity}); err != nil {
		t.Fatalf("retry did not recover from 429: %v", err)
	}
}

func TestQuickScoreTotal(t *testing.T) {
	f := func(text string) bool {
		for _, m := range AllModels() {
			v := Score(m, text)
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScore(b *testing.B) {
	text := "the author is a pathetic idiot and you sheep keep believing the media"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(SevereToxicity, text)
	}
}

func BenchmarkScoreAllModels(b *testing.B) {
	text := "the author is a pathetic idiot and you sheep keep believing the media"
	models := AllModels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreAll(text, models)
	}
}
