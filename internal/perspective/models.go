// Package perspective reimplements the slice of Google's Perspective API
// the paper relies on (§3.5.2, §4.3, §4.4): the SEVERE_TOXICITY, OBSCENE,
// LIKELY_TO_REJECT, and ATTACK_ON_AUTHOR models. The real API is an
// external paid service; we substitute deterministic lexical-regression
// models with the same interface — callers score comments either in
// process or over HTTP through a simulated API endpoint and client, so
// the measurement pipeline still "outsources" scoring exactly as the
// paper describes.
//
// The models are calibrated for *relative* behaviour, which is all the
// paper's findings depend on: LIKELY_TO_REJECT fires on any norm
// violation (it models NY Times moderator rejection and is the most
// sensitive), SEVERE_TOXICITY fires on hateful/threatening language and
// "is less sensitive to positive uses of profanity", OBSCENE tracks
// profanity, and ATTACK_ON_AUTHOR tracks insults aimed at the author of
// the underlying article.
package perspective

import (
	"hash/fnv"
	"math"
	"strings"

	"dissenter/internal/lexicon"
	"dissenter/internal/textutil"
)

// Model names the Perspective attributes the study requests.
type Model string

// The four models the paper uses.
const (
	SevereToxicity Model = "SEVERE_TOXICITY"
	Obscene        Model = "OBSCENE"
	LikelyToReject Model = "LIKELY_TO_REJECT"
	AttackOnAuthor Model = "ATTACK_ON_AUTHOR"
)

// AllModels lists every supported model.
func AllModels() []Model {
	return []Model{SevereToxicity, Obscene, LikelyToReject, AttackOnAuthor}
}

// Valid reports whether m is a supported attribute.
func (m Model) Valid() bool {
	switch m {
	case SevereToxicity, Obscene, LikelyToReject, AttackOnAuthor:
		return true
	}
	return false
}

// features are the per-comment lexical measurements all models share.
type features struct {
	tokens    int
	slur      float64 // dictionary slur+violence density (per token)
	ambiguous float64 // ambiguous dictionary term density
	profanity float64 // obscenity density (dictionary profanity + mild list)
	insult    float64 // insult-term density
	threat    float64 // violent/threatening verb density
	positive  float64 // approving-term density
	secondPer float64 // second-person pronoun density
	authorRef float64 // 1 if the comment references the article's author
	caps      float64 // fraction of letters that are upper case
	exclaim   float64 // '!' per token
	jitter    float64 // deterministic per-comment noise in [0,1)
}

var (
	profanitySet = toSet(lexicon.Profanity())
	insultSet    = toSet(lexicon.Insults())
	threatSet    = toSet(lexicon.Threats())
	positiveSet  = toSet(lexicon.Positive())
	secondSet    = map[string]bool{"you": true, "your": true, "yours": true, "u": true, "ur": true}
)

func toSet(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

func extract(text string) features {
	var f features
	letters, upper := 0, 0
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z':
			letters++
		case r >= 'A' && r <= 'Z':
			letters++
			upper++
		case r == '!':
			f.exclaim++
		}
	}
	if letters > 0 {
		f.caps = float64(upper) / float64(letters)
	}

	lower := strings.ToLower(text)
	for _, ref := range lexicon.AuthorReferences() {
		if strings.Contains(lower, ref) {
			f.authorRef = 1
			break
		}
	}

	tokens := textutil.Tokenize(textutil.Clean(text))
	f.tokens = len(tokens)
	if f.tokens == 0 {
		return f
	}
	dict := lexicon.Hatebase()
	var slur, ambiguous, profane, insult, threat, positive, second float64
	for _, tok := range tokens {
		if term, ok := dict.MatchToken(tok); ok {
			switch term.Category {
			case lexicon.CategorySlur, lexicon.CategoryViolence:
				slur++
			case lexicon.CategoryProfanity:
				profane++
			case lexicon.CategoryAmbiguous:
				ambiguous++
			}
			continue
		}
		switch {
		case profanitySet[tok]:
			profane++
		case insultSet[tok]:
			insult++
		case threatSet[tok]:
			threat++
		case positiveSet[tok]:
			positive++
		case secondSet[tok]:
			second++
		}
	}
	n := float64(f.tokens)
	f.slur = slur / n
	f.ambiguous = ambiguous / n
	f.profanity = profane / n
	f.insult = insult / n
	f.threat = threat / n
	f.positive = positive / n
	f.secondPer = second / n
	f.exclaim /= n

	h := fnv.New64a()
	h.Write([]byte(text))
	f.jitter = float64(h.Sum64()%1000000) / 1000000
	return f
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// clamp01 pins v into [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Score runs one model over a comment, returning a value in [0, 1].
// Scoring is deterministic: the same text always yields the same score.
func Score(m Model, text string) float64 {
	f := extract(text)
	if f.tokens == 0 {
		return 0
	}
	noise := (f.jitter - 0.5) * 0.10 // ±0.05 spread so CDFs are smooth
	switch m {
	case SevereToxicity:
		// Driven by hateful and threatening language; profanity alone
		// ("damn, that's cool") moves it little; approval pulls it down.
		x := -2.6 + 34*f.slur + 16*f.threat + 7*f.insult + 2.5*f.ambiguous +
			1.2*f.profanity + 1.5*f.caps - 5*f.positive
		return clamp01(sigmoid(x) + noise)
	case Obscene:
		x := -2.8 + 30*f.profanity + 8*f.slur + 2*f.insult + f.exclaim
		return clamp01(sigmoid(x) + noise)
	case LikelyToReject:
		// NYT moderators reject nearly any norm violation: insults,
		// profanity, hate, shouting, personal attacks.
		x := -1.1 + 26*f.slur + 14*f.insult + 11*f.profanity + 12*f.threat +
			5*f.ambiguous + 3.5*f.caps + 2.2*f.exclaim + 2.0*f.secondPer -
			6*f.positive
		return clamp01(sigmoid(x) + noise)
	case AttackOnAuthor:
		// Requires the comment to be *about the author* AND insulting;
		// a bare author mention is nearly neutral, insults amplify
		// strongly when aimed at the author.
		x := -3.4 + 1.8*f.authorRef + f.insult*(8+30*f.authorRef) +
			2.5*f.secondPer + 4*f.slur - 3*f.positive
		return clamp01(sigmoid(x) + noise)
	}
	return 0
}

// ScoreAll runs every requested model over a comment.
func ScoreAll(text string, models []Model) map[Model]float64 {
	out := make(map[Model]float64, len(models))
	for _, m := range models {
		out[m] = Score(m, text)
	}
	return out
}
