// Gateway proxy-overhead benchmark: the same cached /trends hit served
// directly by the web server versus through dissenter-gateway's read
// path (probe bookkeeping, candidate selection, buffered body copy).
// The delta is the per-read price of fleet routing; BENCH_serve.json
// records both so bench-compare flags a regression in either.
package dissenter_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/gateway"
	"dissenter/internal/replica"
)

// BenchmarkGatewayReadOverhead measures a proxied cached read against
// the identical direct one. The backend is a real web server over the
// 1k-URL trends fixture with the probe endpoints the gateway needs, so
// the proxied path runs exactly as in production: probed backend,
// fresh tier, buffered copy.
func BenchmarkGatewayReadOverhead(b *testing.B) {
	f := trendsBenchFixture(b, trendsScales[0])
	web := dissenterweb.NewServer(f.db, dissenterweb.WithURLRateLimit(0, 0))
	mux := http.NewServeMux()
	mux.HandleFunc("/replication-status", func(w http.ResponseWriter, r *http.Request) {
		replica.ServeStatus(w, replica.PrimaryStatus(f.db, 0, nil))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ready") })
	mux.Handle("/", web)
	backend := httptest.NewServer(mux)
	defer backend.Close()

	gw := gateway.New(backend.URL, nil, gateway.Options{})
	gw.ProbeNow(context.Background())
	front := httptest.NewServer(gw)
	defer front.Close()

	client := benchClient()
	benchGet(b, client, backend.URL+"/trends") // warm the trends cache once

	for _, bc := range []struct{ name, url string }{
		{"direct", backend.URL + "/trends"},
		{"proxied", front.URL + "/trends"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					benchGet(b, client, bc.url)
				}
			})
			b.StopTimer()
			recordServeMetrics("GatewayReadOverhead/"+bc.name, map[string]float64{
				"ns_per_req": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			})
		})
	}
}
