package main

import (
	"strings"
	"testing"
)

func TestCompare(t *testing.T) {
	baseline := metrics{
		"DiscussionRenderMiss/comments=10k": {"ns_per_op": 2000, "allocs_per_op": 11},
		"TrendsUnderWriteLoad/urls=1k":      {"ns_per_req": 100_000, "cache_hit_pct": 66},
		"Deleted/bench":                     {"ns_per_op": 10},
	}
	current := metrics{
		"DiscussionRenderMiss/comments=10k": {"ns_per_op": 9000, "allocs_per_op": 11},
		"TrendsUnderWriteLoad/urls=1k":      {"ns_per_req": 120_000, "cache_hit_pct": 20},
		"Brand/new":                         {"ns_per_op": 1},
	}
	got := Compare(baseline, current, 2.5, 25)
	want := []string{
		"ns_per_op 2000 -> 9000",   // 4.5x > 2.5x
		"cache_hit_pct 66.0 -> 20", // 46-point drop > 25
		"Deleted/bench: benchmark missing",
	}
	if len(got) != len(want) {
		t.Fatalf("Compare returned %d regressions, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for _, frag := range want {
		found := false
		for _, line := range got {
			if strings.Contains(line, frag) {
				found = true
			}
		}
		if !found {
			t.Errorf("no regression line containing %q in:\n%s", frag, strings.Join(got, "\n"))
		}
	}
}

func TestCompareClean(t *testing.T) {
	baseline := metrics{"A": {"ns_per_op": 1000, "cache_hit_pct": 90}}
	current := metrics{"A": {"ns_per_op": 2400, "cache_hit_pct": 70}}
	if got := Compare(baseline, current, 2.5, 25); len(got) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", got)
	}
}
