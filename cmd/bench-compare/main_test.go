package main

import (
	"math"
	"strings"
	"testing"
)

func TestCompareRanksWorstFirst(t *testing.T) {
	baseline := metrics{
		"DiscussionRenderMiss/comments=10k": {"ns_per_op": 2000, "allocs_per_op": 11},
		"TrendsUnderWriteLoad/urls=1k":      {"ns_per_req": 100_000, "cache_hit_pct": 66},
		"DiscussionHit/comments=10k":        {"ns_per_op": 500, "allocs_per_op": 0},
		"Deleted/bench":                     {"ns_per_op": 10},
	}
	current := metrics{
		"DiscussionRenderMiss/comments=10k": {"ns_per_op": 12000, "allocs_per_op": 11},
		"TrendsUnderWriteLoad/urls=1k":      {"ns_per_req": 120_000, "cache_hit_pct": 20},
		"DiscussionHit/comments=10k":        {"ns_per_op": 510, "allocs_per_op": 2},
		"Brand/new":                         {"ns_per_op": 1},
	}
	got := Compare(baseline, current, 2.5, 25)

	// Every baseline metric yields a delta (4 + the missing benchmark);
	// current-only benchmarks do not.
	if len(got) != 7 {
		t.Fatalf("Compare returned %d deltas, want 7:\n%s", len(got), render(got))
	}

	var regressed []Delta
	for _, d := range got {
		if d.Regressed {
			regressed = append(regressed, d)
		}
	}
	if len(regressed) != 4 {
		t.Fatalf("got %d regressions, want 4:\n%s", len(regressed), render(got))
	}

	// Worst offenders first: the two infinite-severity failures (the
	// deleted benchmark, the 0 -> 2 alloc growth) outrank the 6x
	// timing blowout (severity 2.4), which outranks the 46-point hit
	// drop (severity 1.84).
	if !math.IsInf(regressed[0].Severity, 1) || !math.IsInf(regressed[1].Severity, 1) {
		t.Fatalf("infinite-severity failures not ranked first:\n%s", render(got))
	}
	if regressed[2].Metric != "ns_per_op" || regressed[2].Bench != "DiscussionRenderMiss/comments=10k" {
		t.Fatalf("worst finite regression = %s, want the 6x ns_per_op:\n%s", regressed[2], render(got))
	}
	if regressed[3].Metric != "cache_hit_pct" {
		t.Fatalf("fourth regression = %s, want cache_hit_pct:\n%s", regressed[3], render(got))
	}

	for _, frag := range []string{
		"Deleted/bench: benchmark missing",
		"allocs_per_op 0 -> 2 (zero-alloc baseline grew)",
		"ns_per_op 2000 -> 1.2e+04",
		"cache_hit_pct 66.0 -> 20.0",
	} {
		if !strings.Contains(render(got), frag) {
			t.Errorf("no delta line containing %q in:\n%s", frag, render(got))
		}
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	baseline := metrics{"A": {"ns_per_op": 1000, "allocs_per_op": 3}}
	current := metrics{"A": {"ns_per_op": 1000}}
	got := Compare(baseline, current, 2.5, 25)
	if len(got) != 2 {
		t.Fatalf("got %d deltas, want 2:\n%s", len(got), render(got))
	}
	first := got[0]
	if !first.Regressed || !first.Missing || first.Metric != "allocs_per_op" {
		t.Fatalf("missing metric not a ranked-first regression: %+v", first)
	}
}

func TestCompareClean(t *testing.T) {
	baseline := metrics{"A": {"ns_per_op": 1000, "cache_hit_pct": 90, "allocs_per_op": 0}}
	// Within ratio, within hit-drop, and 0.2 allocs/op of background
	// noise on a zero baseline rounds to 0 — none of it regresses.
	current := metrics{"A": {"ns_per_op": 2400, "cache_hit_pct": 70, "allocs_per_op": 0.2}}
	for _, d := range Compare(baseline, current, 2.5, 25) {
		if d.Regressed {
			t.Fatalf("within-threshold drift flagged: %s", d)
		}
	}
}

func render(ds []Delta) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
