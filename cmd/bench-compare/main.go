// Command bench-compare diffs a fresh serving-path benchmark run
// against the committed BENCH_serve.json baseline and fails on
// regressions past a threshold — the guard rail that keeps the
// baseline honest as the serving layer evolves.
//
//	go run ./cmd/bench-compare -baseline BENCH_serve.json -current BENCH_serve.tmp.json
//
// Every baseline metric is printed as one delta line, sorted by
// regression severity with the worst offender first, so the summary
// reads as a ranked triage list rather than a bare pass/fail.
// Severity is the threshold-normalized badness: how many times over
// its allowed budget a metric landed (1.0 = exactly at the limit).
//
// Timing metrics (ns_per_op, ns_per_req, lag_ns_per_event) regress
// when they exceed baseline*max-ratio; allocation counts
// (allocs_per_op) use the same ratio when the baseline is nonzero —
// and when the baseline is ZERO (the zero-allocation hit path), any
// current value that rounds to one object or more regresses, because
// no ratio can describe 0 -> n. cache_hit_pct regresses when it falls
// more than -max-hit-drop percentage points below the baseline.
// Benchmarks or metrics present in the baseline but MISSING from the
// current run are hard failures with infinite severity, sorted first —
// a silently deleted benchmark is a coverage regression, not a win.
// Metrics only the current run has are informational.
//
// The default ratio is generous because `make bench-compare` runs the
// benchmarks at -benchtime=1x on whatever machine it is invoked on,
// and single-iteration timings of the concurrent mixed-load shapes
// wobble severalfold run to run; it catches order-of-magnitude
// regressions (a hot path going O(page) is 100x at the big fixtures),
// not percent-level drift. Tighten -max-ratio on a quiet box with a
// longer -benchtime for finer comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type metrics = map[string]map[string]float64

// Delta is one baseline-vs-current metric comparison. Severity is
// normalized against the metric's own threshold so deltas of different
// kinds (timing ratios, hit-rate drops, missing keys) sort on one
// axis: > 1 means over budget, +Inf means the key vanished or a
// zero-alloc baseline grew, <= 1 means within budget.
type Delta struct {
	Bench     string
	Metric    string // "" when the whole benchmark is missing
	Base, Cur float64
	Severity  float64
	Missing   bool
	Regressed bool
}

func (d Delta) String() string {
	switch {
	case d.Missing && d.Metric == "":
		return fmt.Sprintf("%s: benchmark missing from current run", d.Bench)
	case d.Missing:
		return fmt.Sprintf("%s: metric %s missing from current run", d.Bench, d.Metric)
	case d.Metric == "cache_hit_pct":
		return fmt.Sprintf("%s: cache_hit_pct %.1f -> %.1f (%+.1f points)",
			d.Bench, d.Base, d.Cur, d.Cur-d.Base)
	case d.Base == 0 && d.Regressed:
		return fmt.Sprintf("%s: %s 0 -> %.4g (zero-alloc baseline grew)",
			d.Bench, d.Metric, d.Cur)
	case d.Base == 0:
		return fmt.Sprintf("%s: %s 0 -> %.4g", d.Bench, d.Metric, d.Cur)
	default:
		return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)",
			d.Bench, d.Metric, d.Base, d.Cur, d.Cur/d.Base)
	}
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_serve.json", "committed baseline JSON")
	currentPath := flag.String("current", "BENCH_serve.tmp.json", "fresh benchmark run JSON")
	maxRatio := flag.Float64("max-ratio", 5, "fail when a timing/alloc metric exceeds baseline*ratio")
	maxHitDrop := flag.Float64("max-hit-drop", 25, "fail when cache_hit_pct drops more than this many points")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal("read current run: %v", err)
	}
	deltas := Compare(baseline, current, *maxRatio, *maxHitDrop)
	failed := 0
	for _, d := range deltas {
		if d.Regressed {
			failed++
			fmt.Fprintln(os.Stderr, "REGRESSION:", d)
		} else {
			fmt.Println("ok:", d)
		}
	}
	if failed > 0 {
		fatal("%d of %d metrics regressed (ratio %.2g, hit-drop %.3g)",
			failed, len(deltas), *maxRatio, *maxHitDrop)
	}
	fmt.Printf("bench-compare: %d metrics across %d benchmarks within thresholds (ratio %.2g, hit-drop %.3g)\n",
		len(deltas), len(baseline), *maxRatio, *maxHitDrop)
}

func load(path string) (metrics, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m metrics
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-compare: "+format+"\n", args...)
	os.Exit(1)
}

// Compare scores every baseline metric against the current run and
// returns the deltas sorted by severity, worst first (ties break on
// benchmark then metric name, so output is deterministic). A baseline
// key absent from the current run is itself a regression — deleting a
// benchmark must be an explicit baseline refresh, never a silent skip.
func Compare(baseline, current metrics, maxRatio, maxHitDrop float64) []Delta {
	var out []Delta
	for name, base := range baseline {
		cur, ok := current[name]
		if !ok {
			out = append(out, Delta{
				Bench: name, Severity: math.Inf(1), Missing: true, Regressed: true,
			})
			continue
		}
		for metric, b := range base {
			c, ok := cur[metric]
			if !ok {
				out = append(out, Delta{
					Bench: name, Metric: metric,
					Severity: math.Inf(1), Missing: true, Regressed: true,
				})
				continue
			}
			d := Delta{Bench: name, Metric: metric, Base: b, Cur: c}
			switch {
			case metric == "cache_hit_pct":
				d.Severity = (b - c) / maxHitDrop
			case b == 0:
				// A zero baseline (the zero-allocation hit path) has no
				// meaningful ratio: anything that rounds to >= 1 object/op
				// is a real regression, fractional residue is measurement
				// noise.
				if math.Round(c) >= 1 {
					d.Severity = math.Inf(1)
				}
			default:
				d.Severity = (c / b) / maxRatio
			}
			d.Regressed = d.Severity > 1
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
