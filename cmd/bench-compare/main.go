// Command bench-compare diffs a fresh serving-path benchmark run
// against the committed BENCH_serve.json baseline and fails on
// regressions past a threshold — the guard rail that keeps the
// baseline honest as the serving layer evolves.
//
//	go run ./cmd/bench-compare -baseline BENCH_serve.json -current BENCH_serve.tmp.json
//
// Timing metrics (ns_per_op, ns_per_req) regress when they exceed
// baseline*max-ratio; allocation counts (allocs_per_op) use the same
// ratio (they are deterministic, so any growth is a real code change);
// cache_hit_pct regresses when it falls more than -max-hit-drop
// percentage points below the baseline. Benchmarks present in the
// baseline but missing from the current run are reported too — a
// silently deleted benchmark is a coverage regression, not a win.
// Metrics and benchmarks only the current run has are informational.
//
// The default ratio is generous because `make bench-compare` runs the
// benchmarks at -benchtime=1x on whatever machine it is invoked on,
// and single-iteration timings of the concurrent mixed-load shapes
// wobble severalfold run to run; it catches order-of-magnitude
// regressions (a hot path going O(page) is 100x at the big fixtures),
// not percent-level drift. Tighten -max-ratio on a quiet box with a
// longer -benchtime for finer comparisons.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type metrics = map[string]map[string]float64

func main() {
	baselinePath := flag.String("baseline", "BENCH_serve.json", "committed baseline JSON")
	currentPath := flag.String("current", "BENCH_serve.tmp.json", "fresh benchmark run JSON")
	maxRatio := flag.Float64("max-ratio", 5, "fail when a timing/alloc metric exceeds baseline*ratio")
	maxHitDrop := flag.Float64("max-hit-drop", 25, "fail when cache_hit_pct drops more than this many points")
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fatal("read current run: %v", err)
	}
	regressions := Compare(baseline, current, *maxRatio, *maxHitDrop)
	if len(regressions) == 0 {
		fmt.Printf("bench-compare: %d benchmarks within thresholds (ratio %.2g, hit-drop %.3g)\n",
			len(baseline), *maxRatio, *maxHitDrop)
		return
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "REGRESSION:", r)
	}
	os.Exit(1)
}

func load(path string) (metrics, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m metrics
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench-compare: "+format+"\n", args...)
	os.Exit(1)
}

// Compare reports every regression of current against baseline, one
// human-readable line each. Only metrics present in BOTH runs of a
// benchmark are compared, so renaming a metric shows up as the missing
// benchmark/metric it is rather than a spurious pass.
func Compare(baseline, current metrics, maxRatio, maxHitDrop float64) []string {
	var out []string
	for name, base := range baseline {
		cur, ok := current[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: benchmark missing from current run", name))
			continue
		}
		for metric, b := range base {
			c, ok := cur[metric]
			if !ok {
				out = append(out, fmt.Sprintf("%s: metric %s missing from current run", name, metric))
				continue
			}
			switch metric {
			case "cache_hit_pct":
				if c < b-maxHitDrop {
					out = append(out, fmt.Sprintf("%s: cache_hit_pct %.1f -> %.1f (allowed drop %.3g points)",
						name, b, c, maxHitDrop))
				}
			default: // ns_per_op, ns_per_req, allocs_per_op: lower is better
				if b > 0 && c > b*maxRatio {
					out = append(out, fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx, allowed %.2gx)",
						name, metric, b, c, c/b, maxRatio))
				}
			}
		}
	}
	return out
}
