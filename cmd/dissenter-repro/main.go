// Command dissenter-repro is the one-shot reproduction: generate a
// synthetic deployment, serve it over loopback HTTP, run the complete
// measurement campaign against it, and print every table and figure of
// the paper with paper-vs-measured comparisons.
//
// Usage:
//
//	dissenter-repro [-scale 0.015625] [-seed 1] [-out corpus-dir]
//
// Scale 1/64 (the default) runs in well under a minute on a laptop;
// scale 1.0 regenerates the full 1.68M-comment corpus.
package main

import (
	"context"
	"flag"
	"log"
	"os"

	"dissenter/internal/repro"
	"dissenter/internal/synth"
)

func main() {
	scale := flag.Float64("scale", synth.DefaultScale, "corpus scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "generation seed")
	workers := flag.Int("workers", 16, "crawl parallelism")
	out := flag.String("out", "", "optionally save the crawled corpus (JSONL) to this directory")
	flag.Parse()

	res, err := repro.Run(context.Background(), repro.Options{
		Scale: *scale, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		log.Fatalf("reproduction failed: %v", err)
	}
	if *out != "" {
		if err := res.DS.Save(*out); err != nil {
			log.Fatalf("save corpus: %v", err)
		}
		log.Printf("corpus saved to %s", *out)
	}
	res.WriteReport(os.Stdout)
}
