// Command dissenter-gateway is the fleet's HTTP front door: it routes
// writes to the primary and fans reads across the replica pool, using
// active health probes and passive outlier detection to keep requests
// away from dead or lagging backends.
//
// Usage:
//
//	dissenter-gateway -primary http://localhost:8080 \
//	    -replica http://localhost:8081 -replica http://localhost:8082 \
//	    [-addr :8079] [-max-lag 4096]
//
// Routing (see internal/gateway for the full state machine):
//
//   - Writes — any non-GET/HEAD request, plus the GET-shaped mutations
//     /discussion/begin, /discussion/vote, /discussion/comment — go to
//     the primary, one attempt, never replayed.
//   - Reads prefer fresh replicas (probed, ready, lag ≤ -max-lag),
//     then never-probed ones, then stale replicas (the response gains
//     X-Served-Stale: 1), then the primary; 503 only when every
//     backend is ejected.
//   - Failed reads retry on the next candidate while the global retry
//     budget (-retry-budget-ratio/-retry-budget-burst) and per-request
//     cap (-retry-attempts) allow.
//   - A backend that fails -eject-after consecutive probes or proxied
//     requests is ejected; only a fully successful probe round (the
//     half-open trial) re-admits it.
//
// Endpoints: /healthz (liveness), /readyz (503 once every backend is
// ejected — a fronting balancer should stop sending traffic),
// /gateway/status (JSON: retry-budget counters and every backend's
// standing), /debug/pprof/ with -pprof. Everything else proxies.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dissenter/internal/gateway"
	"dissenter/internal/httpguard"
)

func main() {
	addr := flag.String("addr", ":8079", "listen address")
	primary := flag.String("primary", "http://localhost:8080", "primary's base URL (writes, read fallback)")
	var replicas []string
	flag.Func("replica", "replica base URL (repeatable)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	maxLag := flag.Uint64("max-lag", 4096, "events behind the fleet head before a replica's reads go stale-labeled (0 = never)")
	probeInterval := flag.Duration("probe-interval", time.Second, "active health probe period")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures before a backend is ejected")
	retryAttempts := flag.Int("retry-attempts", 3, "max backends tried per read")
	retryRatio := flag.Float64("retry-budget-ratio", 0.1, "global retries allowed per read admitted")
	retryBurst := flag.Int("retry-budget-burst", 10, "global retries allowed before the ratio binds")
	maxInflight := flag.Int("max-inflight", 1024, "concurrent proxied requests before shedding (0 = unlimited)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes runtime internals)")
	flag.Parse()
	if len(replicas) == 0 {
		log.Printf("no -replica given: all reads will hit the primary")
	}

	gw := gateway.New(*primary, replicas, gateway.Options{
		MaxLag:           *maxLag,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		EjectAfter:       *ejectAfter,
		RetryAttempts:    *retryAttempts,
		RetryBudgetRatio: *retryRatio,
		RetryBudgetBurst: *retryBurst,
		Logf:             log.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// One synchronous round before serving, so the first request routes
	// on probed state instead of the never-probed tier; then the
	// background prober takes over.
	gw.ProbeNow(ctx)
	go gw.Run(ctx)

	health := httpguard.NewHealth(httpguard.Check{Name: "backends", Probe: gw.ReadyCheck})
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", health.Healthz)
	mux.HandleFunc("/readyz", health.Readyz)
	mux.HandleFunc("/gateway/status", gw.ServeStatus)
	if *pprofOn {
		httpguard.MountPprof(mux)
		log.Printf("pprof mounted at /debug/pprof/")
	}
	mux.Handle("/", httpguard.Admission(*maxInflight, time.Second, gw))

	log.Printf("gateway on %s: primary %s, %d replica(s)", *addr, *primary, len(replicas))
	if err := httpguard.ListenAndServe(ctx, *addr, mux, httpguard.ServeOptions{
		Health: health,
		Logf:   log.Printf,
	}); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
