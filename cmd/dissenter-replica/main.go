// Command dissenter-replica serves the Dissenter web app read-only
// from an out-of-process replica of a primary's store. It tails the
// primary's replication stream (cmd/dissenter-platform's /replication/
// mount), applies every event into its own platform.DB through the
// normal write paths — so its rankings, fragment views, and rendered
// pages are maintained by exactly the code that maintains the
// primary's — and keeps its own WAL+snapshot directory, so a killed
// replica restarts from local state and resumes the stream at its
// durable offset.
//
// Usage:
//
//	dissenter-replica -primary http://localhost:8080/replication [-addr :8081] [-dir ./replica-data]
//
// Routes: the Dissenter web app's read surface (/user/..., /discussion,
// /comment/..., /trends, /leaderboard); the mutating endpoints answer
// 403 (write on the primary). /replication-status reports the
// machine-readable lag shape (replica.StatusJSON: role, head, applied,
// lag, durable, connection state, persister health) that the gateway's
// prober consumes; the primary mirrors the same shape.
// /healthz answers liveness; /readyz answers 503
// once the replica has been disconnected longer than -stale-after, is
// lagging the primary's head by more than -max-lag events, or its
// local persistence has failed sticky.
//
// A not-ready replica KEEPS SERVING reads — stale answers beat shed
// ones for this read-mostly corpus — readiness only steers the load
// balancer; degraded responses carry an X-Served-Stale: 1 header so
// callers can tell. SIGINT/SIGTERM drain in-flight requests, then
// flush the local WAL before exit.
//
// The probe sessions "nsfw-probe" and "off-probe" are pre-registered
// with the same view settings as the primary's, so differential crawls
// can hit either process interchangeably.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/httpguard"
	"dissenter/internal/platform"
	"dissenter/internal/replica"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	primary := flag.String("primary", "http://localhost:8080/replication", "primary's replication mount")
	dir := flag.String("dir", "./replica-data", "local persistence directory")
	urlLimit := flag.Int("url-rate-limit", 0, "per-URL requests per minute (0 = unlimited)")
	staleAfter := flag.Duration("stale-after", 30*time.Second, "readiness: how long a disconnected replica still counts as ready (0 = never fails this check)")
	maxLag := flag.Uint64("max-lag", 65536, "readiness: maximum events behind the primary's last-seen head (0 = unchecked)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes runtime internals)")
	flag.Parse()

	// The serving stack is rebuilt whenever the replica (re)binds its
	// store — at open, and after a snapshot bootstrap replaces the DB
	// instance. A fresh Server over the fresh store means no cache entry
	// can describe state the new store never saw; the event invalidator
	// keeps it coherent from then on.
	var handler atomic.Value // holds http.Handler
	bind := func(db *platform.DB) {
		web := dissenterweb.NewServer(db,
			dissenterweb.ReadOnly(),
			dissenterweb.WithURLRateLimit(*urlLimit, time.Minute),
		)
		web.RegisterSession("nsfw-probe", dissenterweb.Session{ShowNSFW: true})
		web.RegisterSession("off-probe", dissenterweb.Session{ShowOffensive: true})
		db.RegisterView(web.EventInvalidator())
		handler.Store(http.Handler(web))
		log.Printf("serving store at seq %d", db.EventSeq())
	}

	rep, err := replica.Open(*dir, *primary, replica.Options{
		OnState: bind,
		Logf:    log.Printf,
	})
	if err != nil {
		log.Fatalf("open replica: %v", err)
	}
	ready := func() error { return rep.Ready(*staleAfter, *maxLag) }
	health := httpguard.NewHealth(httpguard.Check{Name: "replication", Probe: ready})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runDone := make(chan struct{})
	go func() {
		rep.Run(ctx)
		close(runDone)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", health.Healthz)
	mux.HandleFunc("/readyz", health.Readyz)
	mux.HandleFunc("/replication-status", func(w http.ResponseWriter, r *http.Request) {
		// The machine-readable lag shape the gateway's prober consumes;
		// the primary mirrors the same shape, so the prober decodes one
		// struct for the whole fleet.
		replica.ServeStatus(w, rep.StatusJSON())
	})
	if *pprofOn {
		httpguard.MountPprof(mux)
		log.Printf("pprof mounted at /debug/pprof/")
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// Serve-stale: degraded replication never sheds reads, it just
		// labels them, so callers (and tests) can tell a fresh page
		// from a possibly-behind one.
		if ready() != nil {
			w.Header().Set("X-Served-Stale", "1")
		}
		if r.URL.Path == "/" {
			c := rep.DB().Census()
			fmt.Fprintf(w, "dissenter-replica: seq %d (durable %d), %d Gab users, %d comments on %d URLs\n",
				rep.Seq(), rep.Durable(), c.GabUsers, c.Comments, c.URLs)
			return
		}
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})

	log.Printf("replica of %s serving read-only on %s (data in %s)", *primary, *addr, *dir)
	serveErr := httpguard.ListenAndServe(ctx, *addr, mux, httpguard.ServeOptions{
		Health: health,
		Logf:   log.Printf,
	})
	stop() // end the replication loop even when Serve failed on its own
	<-runDone
	if err := rep.Close(); err != nil {
		log.Printf("replica close: %v", err)
	} else {
		log.Printf("replica flushed and closed (durable is current)")
	}
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, strings.TrimSpace(serveErr.Error()))
		os.Exit(1)
	}
}
