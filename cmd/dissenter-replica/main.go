// Command dissenter-replica serves the Dissenter web app read-only
// from an out-of-process replica of a primary's store. It tails the
// primary's replication stream (cmd/dissenter-platform's /replication/
// mount), applies every event into its own platform.DB through the
// normal write paths — so its rankings, fragment views, and rendered
// pages are maintained by exactly the code that maintains the
// primary's — and keeps its own WAL+snapshot directory, so a killed
// replica restarts from local state and resumes the stream at its
// durable offset.
//
// Usage:
//
//	dissenter-replica -primary http://localhost:8080/replication [-addr :8081] [-dir ./replica-data]
//
// Routes: the Dissenter web app's read surface (/user/..., /discussion,
// /comment/..., /trends, /leaderboard); the mutating endpoints answer
// 403 (write on the primary). /replication-status reports the applied
// and durable sequence numbers as JSON.
//
// The probe sessions "nsfw-probe" and "off-probe" are pre-registered
// with the same view settings as the primary's, so differential crawls
// can hit either process interchangeably.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/platform"
	"dissenter/internal/replica"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	primary := flag.String("primary", "http://localhost:8080/replication", "primary's replication mount")
	dir := flag.String("dir", "./replica-data", "local persistence directory")
	urlLimit := flag.Int("url-rate-limit", 0, "per-URL requests per minute (0 = unlimited)")
	flag.Parse()

	// The serving stack is rebuilt whenever the replica (re)binds its
	// store — at open, and after a snapshot bootstrap replaces the DB
	// instance. A fresh Server over the fresh store means no cache entry
	// can describe state the new store never saw; the event invalidator
	// keeps it coherent from then on.
	var handler atomic.Value // holds http.Handler
	bind := func(db *platform.DB) {
		web := dissenterweb.NewServer(db,
			dissenterweb.ReadOnly(),
			dissenterweb.WithURLRateLimit(*urlLimit, time.Minute),
		)
		web.RegisterSession("nsfw-probe", dissenterweb.Session{ShowNSFW: true})
		web.RegisterSession("off-probe", dissenterweb.Session{ShowOffensive: true})
		db.RegisterView(web.EventInvalidator())
		handler.Store(http.Handler(web))
		log.Printf("serving store at seq %d", db.EventSeq())
	}

	rep, err := replica.Open(*dir, *primary, replica.Options{
		OnState: bind,
		Logf:    log.Printf,
	})
	if err != nil {
		log.Fatalf("open replica: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		rep.Run(ctx)
		rep.Close()
		os.Exit(0)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/replication-status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"applied":%d,"durable":%d}`+"\n", rep.Seq(), rep.Durable())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/" {
			c := rep.DB().Census()
			fmt.Fprintf(w, "dissenter-replica: seq %d (durable %d), %d Gab users, %d comments on %d URLs\n",
				rep.Seq(), rep.Durable(), c.GabUsers, c.Comments, c.URLs)
			return
		}
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})

	log.Printf("replica of %s serving read-only on %s (data in %s)", *primary, *addr, *dir)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, strings.TrimSpace(err.Error()))
		os.Exit(1)
	}
}
