// Command dissenter-platform serves the complete simulated deployment —
// the Gab API, the Dissenter web app, the YouTube pages, a
// Perspective-style scoring endpoint, and a Pushshift-style Reddit API —
// on one HTTP listener, so crawlers (ours or yours) have something real
// to measure.
//
// Usage:
//
//	dissenter-platform [-addr :8080] [-scale 0.015625] [-seed 1] [-data DIR]
//
// With -data DIR the store is durable: on startup the directory's
// newest snapshot plus WAL tail are restored (falling back to corpus
// generation on an empty directory), and from then on every event is
// group-committed to the WAL by a write-behind persister that rotates
// WAL→snapshot so neither the files nor the in-memory event log grow
// without bound (see internal/eventlog). Use the same -scale/-seed as
// the run that created the directory, so the auxiliary simulators
// (YouTube, Reddit) describe the same world.
//
// Routes:
//
//	/api/v1/accounts/...        Gab API (enumeration, relations)
//	/user/... /discussion /comment/...   Dissenter web app
//	/trends /discussion/begin            Gab Trends portal + URL submission
//	/discussion/vote                     up/down voting on a comment page
//	/discussion/comment                  live comment posting (POST, session-authenticated)
//	/leaderboard                         net-vote leaderboard (Figure 5's ordering)
//	/watch /channel/... /user-yt/...     YouTube simulator
//	/v1/comments:analyze        Perspective-style scoring
//	/reddit/... /api/user/...   Pushshift-style Reddit API
//	/replication/events         replication stream (internal/replica.Publisher)
//	/replication/snapshot       replication bootstrap snapshot
//	/replication-status         fleet lag shape (replica.StatusJSON, role "primary")
//	/healthz /readyz            liveness / traffic-steering readiness
//	/debug/pprof/...            runtime profiling (only with -pprof)
//
// Operations: /healthz answers 200 whenever the process is up; /readyz
// flips to 503 when the persister has failed sticky or a shutdown
// drain has begun. Requests (outside the health and replication
// mounts) pass admission control — past -max-inflight concurrent
// requests they are shed with 503 + Retry-After rather than queued.
// SIGINT/SIGTERM drain gracefully: readiness flips first, in-flight
// requests finish, then the persister flushes its WAL and exits.
//
// Three sessions are pre-registered: "nsfw-probe" (NSFW view enabled)
// and "off-probe" (offensive view enabled) for the differential crawl,
// and "writer" (bound to an active Dissenter account) for posting
// through POST /discussion/comment; send any as a "session" cookie.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/eventlog"
	"dissenter/internal/gabapi"
	"dissenter/internal/httpguard"
	"dissenter/internal/perspective"
	"dissenter/internal/pushshift"
	"dissenter/internal/replica"
	"dissenter/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Float64("scale", synth.DefaultScale, "corpus scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "generation seed")
	gabLimit := flag.Int("gab-rate-limit", 0, "Gab API requests per 5-minute window (0 = unlimited)")
	urlLimit := flag.Int("url-rate-limit", 0, "Dissenter per-URL requests per minute (0 = unlimited; platform used 10)")
	dataDir := flag.String("data", "", "persistence directory (restore on start, WAL+snapshot while running; empty = in-memory only)")
	maxInflight := flag.Int("max-inflight", 1024, "admission control: concurrent requests before shedding with 503 (0 = unbounded)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in: exposes runtime internals)")
	flag.Parse()

	log.Printf("generating corpus at scale %.5f (seed %d)...", *scale, *seed)
	out := synth.Generate(synth.NewConfig(*scale, *seed))
	db := out.DB

	health := httpguard.NewHealth()
	var pers *eventlog.Persister
	if *dataDir != "" {
		restored, skipped, err := eventlog.RestoreDir(*dataDir)
		if err != nil {
			log.Fatalf("restore %s: %v", *dataDir, err)
		}
		if restored != nil {
			db = restored
			log.Printf("restored store from %s at seq %d (%d unknown records skipped)", *dataDir, db.EventSeq(), skipped)
		}
		pers, err = eventlog.StartPersister(db, *dataDir, eventlog.Options{
			OnError: func(err error, sticky bool) {
				log.Printf("persist (sticky=%v): %v", sticky, err)
			},
		})
		if err != nil {
			log.Fatalf("start persister: %v", err)
		}
		// Readiness tracks durability: a sticky persister failure means
		// this instance is acking writes it can no longer persist — pull
		// it from rotation while it keeps serving what it has.
		health.AddCheck(httpguard.Check{Name: "persister", Probe: pers.Err})
		log.Printf("persisting events to %s", *dataDir)
	}
	census := db.Census()
	log.Printf("generated: %d Gab users, %d Dissenter users, %d comments on %d URLs",
		census.GabUsers, census.DissenterUsers, census.Comments, census.URLs)

	var gabOpts []gabapi.Option
	if *gabLimit > 0 {
		gabOpts = append(gabOpts, gabapi.WithRateLimit(*gabLimit, 5*60*1e9))
	} else {
		gabOpts = append(gabOpts, gabapi.WithRateLimit(0, 0))
	}
	gab := gabapi.NewServer(db, gabOpts...)

	webOpts := []dissenterweb.Option{dissenterweb.WithHealth(health)}
	if *urlLimit >= 0 {
		webOpts = append(webOpts, dissenterweb.WithURLRateLimit(*urlLimit, 60*1e9))
	}
	web := dissenterweb.NewServer(db, webOpts...)
	web.RegisterSession("nsfw-probe", dissenterweb.Session{ShowNSFW: true})
	web.RegisterSession("off-probe", dissenterweb.Session{ShowOffensive: true})
	sessionBanner := "sessions: nsfw-probe, off-probe"
	if active := db.ActiveUsers(); len(active) > 0 {
		web.RegisterSession("writer", dissenterweb.Session{Username: active[0].Username})
		sessionBanner += fmt.Sprintf(", writer (posts as @%s)", active[0].Username)
	}

	var names []string
	for _, u := range db.DissenterUsers() {
		names = append(names, u.Username)
	}
	sort.Strings(names)
	reddit := pushshift.NewSim(names, *seed+1)

	mux := http.NewServeMux()
	mux.Handle("/api/v1/accounts/", gab)
	mux.Handle("/user/", web)
	mux.Handle("/discussion", web)
	mux.Handle("/discussion/begin", web)
	mux.Handle("/discussion/vote", web)
	mux.Handle("/discussion/comment", web)
	mux.Handle("/trends", web)
	mux.Handle("/trends/", web)
	mux.Handle("/leaderboard", web)
	mux.Handle("/leaderboard/", web)
	mux.Handle("/comment/", web)
	mux.Handle("/watch", out.YouTube)
	mux.Handle("/channel/", out.YouTube)
	mux.Handle("/v1/comments:analyze", perspective.Handler(0))
	mux.Handle("/reddit/", reddit)
	mux.Handle("/api/user/", reddit)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "dissenter-platform: %d Gab users, %d Dissenter users, %d comments\n",
			census.GabUsers, census.DissenterUsers, census.Comments)
		fmt.Fprintf(w, "max Gab ID: %d\n%s\n", db.MaxGabID(), sessionBanner)
	})

	// Admission bounds the simulated surfaces; the health endpoints
	// (the load balancer must always reach them) and the replication
	// stream (replicas falling behind make everything worse) stay
	// outside it.
	root := http.NewServeMux()
	root.HandleFunc("/healthz", health.Healthz)
	root.HandleFunc("/readyz", health.Readyz)
	root.Handle("/replication/", &replica.Publisher{DB: db, Logf: log.Printf})
	root.HandleFunc("/replication-status", func(w http.ResponseWriter, r *http.Request) {
		// The primary mirrors the replica's machine-readable lag shape
		// so the gateway's prober decodes one struct across the fleet:
		// role "primary", head == applied, lag 0.
		var durable uint64
		var perr error
		if pers != nil {
			durable, perr = pers.Durable(), pers.Err()
		}
		replica.ServeStatus(w, replica.PrimaryStatus(db, durable, perr))
	})
	if *pprofOn {
		// Like the health endpoints, profiling stays outside admission: a
		// profile of a saturated process is the one worth taking.
		httpguard.MountPprof(root)
		log.Printf("pprof mounted at /debug/pprof/")
	}
	root.Handle("/", httpguard.Admission(*maxInflight, time.Second, mux))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving on %s (max Gab ID %d)", *addr, db.MaxGabID())
	err := httpguard.ListenAndServe(ctx, *addr, root, httpguard.ServeOptions{
		Health: health,
		Logf:   log.Printf,
	})
	// HTTP is drained; flush the WAL before exiting so the last acked
	// batch is durable.
	if pers != nil {
		if cerr := pers.Close(); cerr != nil {
			log.Printf("persister close: %v", cerr)
			if err == nil {
				err = cerr
			}
		} else {
			log.Printf("persister flushed and closed (durable is current)")
		}
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, strings.TrimSpace(err.Error()))
		os.Exit(1)
	}
}
