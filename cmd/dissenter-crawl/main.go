// Command dissenter-crawl runs the §3 measurement campaign against a
// platform (typically one served by dissenter-platform) and writes the
// mirrored dataset as JSONL.
//
// Usage:
//
//	dissenter-crawl -base http://localhost:8080 -max-gab-id 20312 -out ./corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dissenter/internal/dissentercrawl"
	"dissenter/internal/gabcrawl"
	"dissenter/internal/ids"
)

func main() {
	base := flag.String("base", "http://localhost:8080", "platform base URL (Gab API and Dissenter app)")
	maxID := flag.Int64("max-gab-id", 0, "largest Gab ID to probe (required; the /"+
		"root page of dissenter-platform prints it)")
	out := flag.String("out", "corpus", "output directory for JSONL files")
	workers := flag.Int("workers", 16, "crawl parallelism")
	nsfwSession := flag.String("nsfw-session", "nsfw-probe", "session cookie with NSFW view enabled (empty to skip)")
	offSession := flag.String("offensive-session", "off-probe", "session cookie with offensive view enabled (empty to skip)")
	politeness := flag.Duration("gab-politeness", 0, "minimum spacing between Gab API requests (paper used 1s)")
	timeout := flag.Duration("timeout", 30*time.Minute, "overall campaign deadline")
	flag.Parse()

	if *maxID <= 0 {
		fmt.Fprintln(os.Stderr, "dissenter-crawl: -max-gab-id is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var gabOpts []gabcrawl.Option
	if *politeness > 0 {
		gabOpts = append(gabOpts, gabcrawl.WithPoliteness(*politeness))
	}
	campaign := &dissentercrawl.Campaign{
		Gab:      gabcrawl.New(*base, nil, gabOpts...),
		MaxGabID: ids.GabID(*maxID),
		Web:      dissentercrawl.New(*base, nil),
		Workers:  *workers,
	}
	if *nsfwSession != "" {
		campaign.NSFWWeb = dissentercrawl.New(*base, nil, dissentercrawl.WithSession(*nsfwSession))
	}
	if *offSession != "" {
		campaign.OffensiveWeb = dissentercrawl.New(*base, nil, dissentercrawl.WithSession(*offSession))
	}

	log.Printf("crawling %s (IDs 1..%d, %d workers)...", *base, *maxID, *workers)
	start := time.Now()
	ds, err := campaign.Run(ctx)
	if err != nil {
		log.Fatalf("campaign failed: %v", err)
	}
	log.Printf("mirrored %d users, %d URLs, %d comments in %s",
		len(ds.Users), len(ds.URLs), len(ds.Comments), time.Since(start).Round(time.Millisecond))

	if err := ds.Save(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("wrote %s/{users,urls,comments,graph}.jsonl", *out)
}
