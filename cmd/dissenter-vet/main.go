// Command dissenter-vet runs the project's five static analyzers
// (internal/lint) under the `go vet -vettool` unitchecker protocol:
//
//	go build -o bin/dissenter-vet ./cmd/dissenter-vet
//	go vet -vettool=bin/dissenter-vet ./...
//
// The go command invokes the tool once per package with a JSON .cfg
// file naming the package's sources and the export data of every
// dependency; the tool typechecks the unit against that export data
// (no network, no module resolution), runs the analyzers, prints any
// diagnostics as file:line:col lines on stderr, and exits 2 so the go
// command reports failure. Packages outside this module arrive as
// VetxOnly (facts-only) units and are skipped.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dissenter/internal/lint"
)

func main() {
	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "-V":
			// The go command caches vet results keyed by this line;
			// hashing the executable invalidates them on rebuild.
			fmt.Printf("%s version %s\n", progName(), buildID())
			return
		case arg == "-flags":
			// No analyzer flags: the suite always runs whole.
			fmt.Println("[]")
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: %s [-V=full | -flags | package.cfg]\n", progName())
		os.Exit(2)
	}
	diags, err := runUnit(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progName(), err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
		os.Exit(2)
	}
}

func progName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// vetConfig is the subset of the go command's vet configuration file
// the tool consumes (cmd/go/internal/work writes it; the field set
// matches x/tools' unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command expects the facts file to exist on success even
	// though this suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil // dependency unit: facts only, nothing to report
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, typeErrs[0])
	}
	return lint.Run(fset, files, pkg, info, lint.Analyzers())
}
