package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVetCleanTree is the acceptance gate for the whole suite: build
// the vettool, run it through `go vet -vettool` over every package in
// the module, and require zero diagnostics. Any invariant regression
// anywhere in the tree fails this test (and `make lint`, which runs
// the same command).
func TestVetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("building and vetting the whole tree is not short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go command unavailable: %v", err)
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	tool := filepath.Join(t.TempDir(), "dissenter-vet")
	build := exec.Command(goBin, "build", "-o", tool, "./cmd/dissenter-vet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}

	var stderr bytes.Buffer
	vet := exec.Command(goBin, "vet", "-vettool="+tool, "./...")
	vet.Dir = repoRoot
	vet.Stdout = os.Stdout
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool reported diagnostics: %v\n%s", err, stderr.String())
	}
}
