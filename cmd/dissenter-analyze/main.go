// Command dissenter-analyze loads a crawled corpus (JSONL, as written by
// dissenter-crawl) and prints the §4 analyses that need no external
// services: headline statistics, Tables 1–2, Figures 3–5 and 8, URL
// forensics, languages, the shadow overlay, the social network, and the
// hateful core.
//
// Usage:
//
//	dissenter-analyze -corpus ./corpus [-core-min-comments 100]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dissenter/internal/allsides"
	"dissenter/internal/analysis"
	"dissenter/internal/corpus"
	"dissenter/internal/graph"
	"dissenter/internal/perspective"
	"dissenter/internal/report"
	"dissenter/internal/stats"
)

func main() {
	dir := flag.String("corpus", "corpus", "corpus directory (JSONL)")
	coreMin := flag.Int("core-min-comments", 100, "hateful-core minimum comment count (paper: 100)")
	coreTox := flag.Float64("core-toxicity", 0.3, "hateful-core median toxicity threshold (paper: 0.3)")
	flag.Parse()

	ds, err := corpus.Load(*dir)
	if err != nil {
		log.Fatalf("load corpus: %v", err)
	}
	s := analysis.NewStudy(ds)
	w := os.Stdout

	h := s.Headline()
	head := &report.Table{Title: "Headline (§4.1)", Headers: []string{"metric", "value"}}
	head.AddRow("users", report.N(h.Users))
	head.AddRow("active users", fmt.Sprintf("%s (%s)", report.N(h.ActiveUsers), report.Pct(h.ActiveFraction)))
	head.AddRow("comments", report.N(h.Comments))
	head.AddRow("replies", report.N(h.Replies))
	head.AddRow("URLs", report.N(h.URLs))
	head.AddRow("first-month joins", report.Pct(h.FirstMonthJoins))
	head.AddRow("deleted-Gab commenters", report.N(h.DeletedGabUsers))
	head.AddRow("censorship bios", report.Pct(h.CensorshipBios))
	head.AddRow("longest comment", report.N(h.LongestComment)+" chars")
	head.Render(w)
	fmt.Fprintln(w)

	t1 := s.Table1()
	t1tab := &report.Table{Title: fmt.Sprintf("Table 1 (n=%s active users)", report.N(t1.N)),
		Headers: []string{"attribute", "count", "share"}}
	for _, flag := range []string{"canLogin", "canPost", "canReport", "canChat", "canVote",
		"isBanned", "isAdmin", "isModerator", "is_pro", "is_donor", "is_investor",
		"is_premium", "is_tippable", "is_private", "verified"} {
		t1tab.AddRow(flag, report.N(t1.Flags[flag]), report.Pct(float64(t1.Flags[flag])/float64(maxi(1, t1.N))))
	}
	for _, f := range []string{"pro", "verified", "standard", "nsfw", "offensive"} {
		t1tab.AddRow("filter:"+f, report.N(t1.Filters[f]), report.Pct(float64(t1.Filters[f])/float64(maxi(1, t1.N))))
	}
	t1tab.Render(w)
	fmt.Fprintln(w)

	t2 := s.Table2()
	t2tab := &report.Table{Title: "Table 2", Headers: []string{"rank", "tld", "share", "domain", "share"}}
	for i := 0; i < 10 && i < len(t2.TLDs) && i < len(t2.Domains); i++ {
		t2tab.AddRow(fmt.Sprintf("%d", i+1),
			t2.TLDs[i].Name, report.Pct(float64(t2.TLDs[i].N)/float64(t2.Total)),
			t2.Domains[i].Name, report.Pct(float64(t2.Domains[i].N)/float64(t2.Total)))
	}
	t2tab.Render(w)
	fmt.Fprintln(w)

	f3 := s.Figure3()
	fmt.Fprintf(w, "Figure 3: 90%% of comments from %s of active users  %s\n\n",
		report.Pct(f3.TopShare90), report.Sparkline(f3.Curve))

	f4 := s.Figure4()
	for _, m := range analysis.Figure4Models {
		report.CDFBlock(w, fmt.Sprintf("Figure 4 — %s", m), f4.ECDFs[m])
	}
	fmt.Fprintln(w)

	f5 := s.Figure5()
	fmt.Fprintf(w, "Figure 5: zero-vote URLs %s, positive %s, negative %s; zero-vote mean toxicity %.3f vs voted %.3f\n\n",
		report.N(f5.ZeroURLs), report.N(f5.PositiveURLs), report.N(f5.NegativeURLs),
		f5.ZeroVoteMean, f5.VotedMean)

	f8 := s.Figure8()
	biasTab := &report.Table{Title: "Figure 8a — SEVERE_TOXICITY by bias",
		Headers: []string{"bias", "n", "mean", "median"}}
	for _, b := range allsides.AllCategories() {
		sum := f8.Summaries[b]
		biasTab.AddRow(b.String(), report.N(sum.N), fmt.Sprintf("%.3f", sum.Mean), fmt.Sprintf("%.3f", sum.Median))
	}
	biasTab.Render(w)
	fmt.Fprintln(w)

	mix := s.LanguageMix()
	langTab := &report.Table{Title: "Languages (§4.2.3)", Headers: []string{"language", "share"}}
	for _, code := range []string{"en", "de", "fr", "es", "it", "pt", "nl"} {
		langTab.AddRow(code, report.Pct(mix.Shares[code]))
	}
	langTab.Render(w)
	fmt.Fprintln(w)

	so := s.ShadowOverlay()
	fmt.Fprintf(w, "Shadow overlay (§4.3.1): %s NSFW (%s), %s offensive (%s)\n\n",
		report.N(so.NSFW), report.Pct(so.NSFWRate), report.N(so.Offensive), report.Pct(so.OffRate))

	ss := s.SocialStats()
	fmt.Fprintf(w, "Social graph: %s nodes, %s edges, %s isolated; alpha_in=%.2f alpha_out=%.2f\n",
		report.N(ss.Nodes), report.N(ss.Edges), report.N(ss.Isolated), ss.InFit.Alpha, ss.OutFit.Alpha)

	core := s.HatefulCore(graph.HatefulCoreParams{MinComments: *coreMin, MedianToxicity: *coreTox})
	fmt.Fprintf(w, "Hateful core (>=%d comments, median toxicity >=%.2f): %d users in %d components (largest %d)\n",
		*coreMin, *coreTox, core.TotalUsers, len(core.Components), core.Largest)
	for i, comp := range core.Components {
		fmt.Fprintf(w, "  component %d (%d): %v\n", i+1, len(comp), comp)
	}

	// Overall toxicity summary for orientation.
	sev := stats.NewECDF(s.Scores(perspective.SevereToxicity))
	fmt.Fprintf(w, "\nSEVERE_TOXICITY: median %.3f, %s of comments >= 0.5\n",
		sev.Quantile(0.5), report.Pct(sev.FractionAbove(0.5)))
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
