// Package dissenter is a from-scratch Go reproduction of "Reading
// In-Between the Lines: An Analysis of Dissenter" (Rye, Blackburn,
// Beverly; IMC 2020) — the measurement study of Gab's web-annotation
// overlay.
//
// The platform is dead, so the repository contains both sides of the
// study: behaviourally-faithful simulators of every external system the
// paper depended on (the Gab API, the Dissenter web app, YouTube's
// JS-rendered pages, the Perspective API, Pushshift/Reddit) and the full
// measurement pipeline that the paper ran against the real thing
// (enumeration, response-size probing, differential authenticated
// crawling, hidden-metadata mining, social-graph crawling) plus every
// analysis in the evaluation (toxicity classification three ways,
// media-bias conditioning, the hateful-core extraction).
//
// Start with DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and examples/quickstart for running code.
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's §4.
package dissenter
