// Package dissenter is a from-scratch Go reproduction of "Reading
// In-Between the Lines: An Analysis of Dissenter" (Rye, Blackburn,
// Beverly; IMC 2020) — the measurement study of Gab's web-annotation
// overlay.
//
// The platform is dead, so the repository contains both sides of the
// study: behaviourally-faithful simulators of every external system the
// paper depended on (the Gab API, the Dissenter web app, YouTube's
// JS-rendered pages, the Perspective API, Pushshift/Reddit) and the full
// measurement pipeline that the paper ran against the real thing
// (enumeration, response-size probing, differential authenticated
// crawling, hidden-metadata mining, social-graph crawling) plus every
// analysis in the evaluation (toxicity classification three ways,
// media-bias conditioning, the hateful-core extraction).
//
// Start with DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured results, and examples/quickstart for running code.
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's §4; bench_concurrent_test.go measures the
// simulators under concurrent crawler load.
//
// # Store architecture
//
// The ground truth lives in internal/platform.DB, a concurrency-safe
// sharded store. Every lookup index (users by Gab ID / username /
// author-id, URLs by id / address, comments by id / page / author, the
// follower reverse index, and the serve-time vote tallies) is split
// across 16 independently RWMutex-guarded shards keyed by a mixed hash
// of the index key, and is maintained incrementally on insert — there
// is no whole-store rebuild. Entity records are immutable once
// inserted; slice-valued index entries are replaced copy-on-write, so
// any slice handed to a reader is a stable snapshot. The mutable
// surfaces are Gab Trends URL submission (DB.SubmitURL, idempotent per
// address), voting (DB.Vote), and live comment posting (DB.AddComment),
// which the web simulator exposes at /discussion/begin,
// /discussion/vote, and POST /discussion/comment. All URL-keyed
// endpoints normalize the address with urlkit.Normalize first, so
// trivially different encodings of one address (scheme/host case,
// default ports, fragments) share one record, one vote tally, one
// cache subject, and one rate-limit bucket.
//
// Every mutation flows through one event-dispatch pipeline
// (internal/platform/events.go): the write method updates the base
// lookup indexes, appends a typed event (UserAdded, URLSubmitted,
// CommentAdded, FollowAdded, VoteCast) to the store's append-only
// event log, and fans it out to the registered materialized views —
// no write path hand-wires a ranking update. The log is the
// multi-backend seam: DB.ReplayInto re-applies the sequence into
// another store through the same write paths, rebuilding its base
// indexes and views; replaying one log into two fresh stores yields
// identical view states (the determinism test pins this), so a
// persistent or remote backend only has to consume events, never scan.
// Views attach through the exported platform.View interface
// (Name/Apply/Rebuild, registered with DB.RegisterView) — the four
// built-in rankings and the web layer's replica cache invalidator all
// use the same seam.
//
// The event stream is also the durability and replication contract.
// internal/eventlog defines the versioned binary codec (length-prefixed,
// CRC-32C-checksummed frames; append-only field compatibility; golden
// files pin the bytes), a group-commit write-ahead log, and a snapshot
// format over DB.Checkpoint; eventlog.Persister runs write-behind off
// AwaitEvents, rotates snapshot+WAL, and CompactLog-truncates the
// in-memory log so a long-lived primary's RAM stops growing.
// internal/replica serves the stream over chunked HTTP
// (replica.Publisher at /replication/ on cmd/dissenter-platform,
// resumable via ?since=, with a snapshot bootstrap behind 410 Gone)
// and consumes it out of process: cmd/dissenter-replica applies every
// event into its own DB through the normal write paths and serves the
// read surface read-only, byte-identical to the primary — proven by a
// crash-recovery test that kill -9s a real replica child process
// mid-stream and diffs every page after restart.
//
// The hot read path never scans the store; three rankings and one
// content view are write-maintained over that event stream. The Gab
// Trends ranking bumps per-URL visibility-class counters on
// CommentAdded and re-offers the URL to a bounded top-50 structure per
// session view (rankheap.TopK under a short per-view mutex — exact
// under bounding because comment counts are monotone), so a cache-miss
// trends render is O(50) at any store size. The net-vote leaderboard
// (Figure 5's ordering, served at GET /leaderboard) is NOT monotone —
// downvotes sink a URL — so it uses rankheap.Exact, which remembers
// every URL across an elite top-50 heap and an overflow heap and stays
// exact under decrease-key at O(log #URLs) per vote, with per-URL
// sequence stamps resolving out-of-order offers. The follower-count
// ranking (DB.TopFollowed) counts are monotone again (no unfollow
// surface) and reuses the bounded TopK shape. Oracle equivalence tests
// pin each ranking's exact agreement with a full scan under concurrent
// writes. Bulk readers (Validate, Census, analyses) iterate through
// the zero-copy RangeUsers/RangeURLs/RangeComments accessors, which
// pin the append-only insertion log under a brief read lock and walk
// it in place; no HTTP handler materializes a whole-store slice
// snapshot.
//
// The fourth view is content, not ordering: the discussion/home
// fragment view (internal/platform/pageindex.go) memoizes each
// comment's pre-escaped HTML row once at write time (comments are
// immutable, so the fragment never changes) and maintains, per URL,
// the four per-session-view comment streams — ID-ordered
// concatenations of the visible fragments — plus the visibility-class
// counters that derive every view's visible count, and, per author,
// the distinct-URL home listing with the author's own per-URL class
// counts. A discussion render (DB.CommentStream) is a memoized head,
// an O(1) stream snapshot, and a counter read; a home render
// (DB.HomeURLs) reads counters instead of scanning every comment of
// every listed URL. That makes a hot-page miss O(delta) where the seed
// paid two full passes and one html.EscapeString per comment per miss
// — ~10k escapes on a viral page. The view is lazily materialized per
// subject on first render and write-maintained afterwards;
// out-of-ID-order event arrivals rebuild the subject from the sorted
// base index without re-escaping. Oracle tests pin fragment-assembled
// pages byte-identical to a from-scratch full render across all four
// session views under concurrent posts and votes.
//
// The HTTP simulators front their hot endpoints — comment listings,
// user profiles, trends — with a small LRU+TTL response cache
// (internal/respcache) keyed by endpoint, subject, and session view, so
// shadow-overlay opt-ins never share cached pages with anonymous
// sessions (the leaderboard is view-independent — votes carry no
// overlay — and caches under one key). Misses coalesce through
// respcache.GetOrFill (singleflight): N concurrent requests on one
// cold key run ONE render, with the fill's epoch snapshotted under the
// same lock acquisition that published the flight, so a fill racing an
// invalidation is handed to its waiters but never cached stale.
// Coherence rules: discussion pages cache STRUCTURED entries (stable
// head, mutable vote/count span, fragment stream), so a vote patches
// two integers in place (respcache.Update) and a posted comment swaps
// in the view's grown stream — the page's escaped HTML is never
// discarded; a view with no live entry falls back to exact-key
// invalidation, whose tombstone discards racing fills. A posted
// comment additionally drops every session view of the posting
// author's home page (its commented-URL listing changed shape) and of
// the trends ranking (comment counts order it) — by exact key across
// the enumerable session views, never a cache scan. Everything else
// expires by TTL, the backstop for out-of-band store writes. URL
// submissions invalidate only the leaderboard (a newcomer enters the
// net-vote ranking at its baseline) — unknown-URL invitation pages are
// never cached (their keys are visitor-chosen, so caching them would
// let a URL scan evict the hot set) and the store fully indexes a
// submission before it becomes findable.
//
// The live write path is what makes the measurement side honest:
// internal/dissentercrawl's Poster writes comments while a Campaign
// crawls (the paper's §3.2 moving-target condition), the differential
// labeler re-verifies candidate shadow comments with a post-observation
// anonymous revisit so mid-crawl plain comments are never mislabeled,
// and Campaign.Stabilize re-spiders until the mirror reaches a fixpoint
// (see examples/live-crawl).
package dissenter
