module dissenter

go 1.24
