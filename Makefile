# Targets mirror the CI pipeline (.github/workflows/ci.yml): a green
# `make ci` locally means a green pipeline.

GO ?= go

# platform covers the event pipeline and every materialized view
# (events.go, trendindex, voteindex, followindex); rankheap covers both
# the bounded TopK and the non-monotone Exact structure; eventlog and
# replica cover the durability/replication layer (WAL group commit,
# streaming apply, snapshot bootstrap); faultinject/httpguard/chaos
# cover the fault seams and the degradation machinery they exercise;
# gateway covers the fleet front door (probing, failover, breakers).
RACE_PKGS = ./internal/platform/... ./internal/respcache/... \
            ./internal/rankheap/... \
            ./internal/eventlog/... ./internal/replica/... \
            ./internal/faultinject/... ./internal/httpguard/... \
            ./internal/gateway/... ./internal/chaos/... \
            ./internal/gabapi/... ./internal/dissenterweb/... \
            ./internal/crawlkit/... ./internal/dissentercrawl/...

# Allocation budgets for one cache-miss render of the write-maintained
# rankings (both measured ~15) and of a discussion page served from the
# fragment view (measured ~11, constant in comments-per-URL; headroom
# for noise). A regression past these fails bench-budget. The HIT
# budget is exact: a cache hit serves composed bytes and must allocate
# NOTHING — the benchmark rounds its MemStats delta to the nearest
# integer, so there is no noise to leave headroom for.
TRENDS_ALLOC_BUDGET = 64
LEADER_ALLOC_BUDGET = 64
DISC_ALLOC_BUDGET = 64
HIT_ALLOC_BUDGET = 0

.PHONY: build test race chaos crash-recovery bench bench-budget bench-compare lint fuzz-smoke fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# The scripted fault-injection suite (internal/chaos): nine
# deterministic schedules — disk full during rotation, sticky fsync
# flipping /readyz, partition mid-stream, flapping primary during
# bootstrap, serve-stale, drain-flushes-WAL, plus three gateway
# schedules (replica killed mid-request, primary flap during write
# load, whole-pool lag excursion) — each asserting no event loss,
# byte-identical convergence, and zero failed reads while any backend
# is healthy. Also part of `race`.
chaos:
	$(GO) test -race -count=1 -v ./internal/chaos/

# The out-of-process crash-recovery proof on its own (it also runs as
# part of `test`): kill -9 a replica child process mid-stream, restart
# it over the same directory, byte-compare every page vs the primary.
crash-recovery:
	$(GO) test -count=1 -v -run TestReplicaCrashRecovery ./internal/replica/

# Smoke-run every benchmark once so bench code can never rot; use
# `go test -bench=Concurrent -cpu 1,2,4,8 .` for real numbers. The
# serving-path benchmarks also emit a machine-readable baseline
# (BENCH_serve.json: ns/op, allocs/op, cache hit rate). The second
# invocation sweeps the in-process cache-hit benchmarks across -cpu
# 1,2,4 (each parallelism records its own .../cpu=N baseline key);
# BENCH_SERVE_MERGE makes that separate test process extend the file
# the first invocation wrote instead of clobbering it, while the first
# invocation stays non-merging so deleted benchmarks fall out.
bench:
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run 'ProbablyNoSuchTest' -bench=. -benchtime=1x ./...
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.json BENCH_SERVE_MERGE=1 \
		$(GO) test -run 'ProbablyNoSuchTest' -bench 'Hit' -cpu 1,2,4 -benchtime=100x .

# Budget assertions on the hot read paths: a cache-miss trends or
# leaderboard render must stay under its allocation budget regardless
# of store size (both are served from write-maintained indexes,
# O(TrendLimit) / O(LeaderLimit)).
bench-budget:
	BENCH_TRENDS_MAX_ALLOCS=$(TRENDS_ALLOC_BUDGET) \
		$(GO) test -run 'ProbablyNoSuchTest' -bench BenchmarkTrendsRenderMiss -benchtime=200x .
	BENCH_LEADER_MAX_ALLOCS=$(LEADER_ALLOC_BUDGET) \
		$(GO) test -run 'ProbablyNoSuchTest' -bench BenchmarkLeaderboardRenderMiss -benchtime=200x .
	BENCH_DISC_MAX_ALLOCS=$(DISC_ALLOC_BUDGET) \
		$(GO) test -run 'ProbablyNoSuchTest' -bench BenchmarkDiscussionRenderMiss -benchtime=200x .
	BENCH_HIT_MAX_ALLOCS=$(HIT_ALLOC_BUDGET) \
		$(GO) test -run 'ProbablyNoSuchTest' -bench 'BenchmarkDiscussionHit$$|BenchmarkDiscussionHit304$$' -benchtime=200x .

# Regression gate against the committed baseline: rerun the serving
# benchmarks into a scratch file and diff it against BENCH_serve.json.
# Thresholds are generous (order-of-magnitude guard, not percent drift)
# because the smoke run is -benchtime=1x on an arbitrary machine; see
# cmd/bench-compare for the knobs. After an INTENTIONAL improvement,
# refresh the baseline with `make bench` and commit it.
bench-compare:
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.tmp.json \
		$(GO) test -run 'ProbablyNoSuchTest' -bench=. -benchtime=1x ./...
	BENCH_SERVE_JSON=$(CURDIR)/BENCH_serve.tmp.json BENCH_SERVE_MERGE=1 \
		$(GO) test -run 'ProbablyNoSuchTest' -bench 'Hit' -cpu 1,2,4 -benchtime=100x .
	$(GO) run ./cmd/bench-compare -baseline $(CURDIR)/BENCH_serve.json \
		-current $(CURDIR)/BENCH_serve.tmp.json
	rm -f $(CURDIR)/BENCH_serve.tmp.json

# The project's own five-analyzer suite (internal/lint: rangewalk,
# viewpurity, cachecoherence, lockscope, wirecompat) runs through the
# go vet -vettool protocol. The tool is built once into bin/ and the
# go command caches per-package vet results against its hash, so
# repeat runs only re-analyze changed packages.
VETTOOL = $(CURDIR)/bin/dissenter-vet

lint:
	$(GO) build -o $(VETTOOL) ./cmd/dissenter-vet
	$(GO) vet -vettool=$(VETTOOL) ./...
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

# Actually execute the codec round-trip fuzzer for a few seconds (the
# plain test run only replays the seed corpus). Ten seconds is a smoke
# pass, not a campaign; run longer locally when touching the codec.
fuzz-smoke:
	$(GO) test -run '^FuzzRoundTrip$$' -fuzz '^FuzzRoundTrip$$' -fuzztime=10s ./internal/eventlog/

fmt:
	gofmt -w .

ci: build lint test race chaos bench bench-budget fuzz-smoke
