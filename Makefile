# Targets mirror the CI pipeline (.github/workflows/ci.yml): a green
# `make ci` locally means a green pipeline.

GO ?= go

RACE_PKGS = ./internal/platform/... ./internal/respcache/... \
            ./internal/gabapi/... ./internal/dissenterweb/... \
            ./internal/crawlkit/... ./internal/dissentercrawl/...

.PHONY: build test race bench lint fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Smoke-run every benchmark once so bench code can never rot; use
# `go test -bench=Concurrent -cpu 1,2,4,8 .` for real numbers.
bench:
	$(GO) test -run 'ProbablyNoSuchTest' -bench=. -benchtime=1x ./...

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint test race bench
