// Toxicity pipeline: classify a handful of comments the three ways the
// paper does (§3.5) — Hatebase-style dictionary ratio, Perspective-style
// model scores (both in-process and over the HTTP API), and the
// three-class SVM — and print them side by side.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"dissenter/internal/hatespeech"
	"dissenter/internal/lexicon"
	"dissenter/internal/perspective"
	"dissenter/internal/toxdict"
)

func main() {
	// A spread of registers. The synthetic dictionary's "slur" category
	// is pseudo-words; pull one so the hateful example actually matches.
	slur := lexicon.Hatebase().WordsByCategory(lexicon.CategorySlur)[0]
	comments := []string{
		"great article, thanks for the insightful report",
		"wake up you sheep, the media is lying about the election again!!",
		"the author is a pathetic liar and a fraud",
		"what a stupid take, damn",
		"the " + slur + " media will destroy our country, deport every " + slur,
		"long live our glorious queen", // dictionary false positive ("queen")
	}

	// 1. Dictionary scorer (§3.5.1): stemmed token ratio.
	dict := toxdict.Default()

	// 2. Perspective over HTTP (§3.5.2): the paper "outsources" scoring.
	srv := httptest.NewServer(perspective.Handler(0))
	defer srv.Close()
	client := perspective.NewClient(srv.URL, srv.Client())

	// 3. NLP classifier (§3.5.3): 3-class SVM with ADASYN.
	fmt.Println("training SVM on synthetic Davidson corpus...")
	clf := hatespeech.Train(hatespeech.SyntheticCorpus(0.05, 1), hatespeech.DefaultTrainConfig())

	fmt.Printf("%-64s %6s %7s %7s %10s\n", "comment", "dict", "severe", "reject", "svm")
	for _, c := range comments {
		scores, err := client.Analyze(context.Background(), c,
			[]perspective.Model{perspective.SevereToxicity, perspective.LikelyToReject})
		if err != nil {
			log.Fatal(err)
		}
		display := c
		if len(display) > 60 {
			display = display[:57] + "..."
		}
		fmt.Printf("%-64s %6.3f %7.3f %7.3f %10s\n",
			display,
			dict.Score(c),
			scores[perspective.SevereToxicity],
			scores[perspective.LikelyToReject],
			clf.Predict(c))
	}

	// The dictionary's ambiguity problem, quantified: "queen" matches.
	res := dict.Classify("long live our glorious queen")
	fmt.Printf("\ndictionary matched %d/%d tokens in the royalist comment (ambiguous term: %q)\n",
		res.HateTokens, res.Tokens, res.Matched[0].Word)
}
