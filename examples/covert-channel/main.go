// Covert channel: the paper's §6 observation made concrete. Any URL —
// existing or not, any scheme — anchors a Dissenter comment thread, so
// two users who agree on an arbitrary fictitious URL get a hidden
// mailbox: invisible to every web user, absent from any search engine,
// discoverable only by knowing the anchor string. This example builds a
// platform where two users converse on a made-up URL and shows that (a)
// the thread is fully functional and (b) a site owner crawling their own
// real URLs would never see it.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
)

func main() {
	gen := ids.NewGenerator(42)
	t0 := time.Date(2019, 6, 1, 12, 0, 0, 0, time.UTC)

	alice := &platform.User{GabID: 1, Username: "alice", CreatedAt: t0,
		HasDissenter: true, AuthorID: gen.NewAt(t0)}
	bob := &platform.User{GabID: 2, Username: "bob", CreatedAt: t0,
		HasDissenter: true, AuthorID: gen.NewAt(t0)}

	// The anchor need not resolve, nor even use a real scheme.
	const anchor = "dissenter://dead-drop/7f3a91/channel-one"
	drop := &platform.CommentURL{ID: gen.NewAt(t0), URL: anchor, FirstSeen: t0}

	msgs := []struct {
		author *platform.User
		text   string
	}{
		{alice, "the package is at the usual place"},
		{bob, "confirmed. same time thursday"},
		{alice, "bring the second key"},
	}
	db := platform.New(
		[]*platform.User{alice, bob},
		[]*platform.CommentURL{drop},
		nil, nil)
	var parent ids.ObjectID
	for i, m := range msgs {
		at := t0.Add(time.Duration(i+1) * time.Minute)
		c := &platform.Comment{ID: gen.NewAt(at), URLID: drop.ID,
			AuthorID: m.author.AuthorID, ParentID: parent, Text: m.text, CreatedAt: at}
		db.AddComment(c)
		parent = c.ID
	}
	if err := db.Validate(); err != nil {
		log.Fatal(err)
	}

	srv := httptest.NewServer(dissenterweb.NewServer(db, dissenterweb.WithURLRateLimit(0, 0)))
	defer srv.Close()

	// Anyone who knows the anchor sees the conversation...
	page := fetch(srv.URL + "/discussion?url=" + url.QueryEscape(anchor))
	fmt.Println("== the dead drop, as seen by someone who knows the anchor ==")
	for _, m := range msgs {
		fmt.Printf("  message present: %v  (%q)\n", contains(page, m.text), m.text)
	}

	// ...while the content owner, enumerating every URL they actually
	// serve, finds nothing: the anchor exists only inside Dissenter.
	fmt.Println("\n== the web's view ==")
	for _, owned := range []string{
		"https://dead-drop.example.com/",
		"https://dead-drop.example.com/channel-one",
	} {
		page := fetch(srv.URL + "/discussion?url=" + url.QueryEscape(owned))
		fmt.Printf("  owned URL %-45s -> %q\n", owned, firstLineWith(page, "No comments"))
	}
	fmt.Println("\nthe channel is a URL that was never served by anyone:", anchor)
}

func fetch(u string) string {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

func contains(haystack, needle string) bool {
	return len(haystack) > 0 && len(needle) > 0 &&
		len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func firstLineWith(page, marker string) string {
	if indexOf(page, marker) >= 0 {
		return "No comments yet. Be the first to dissent!"
	}
	return "(thread exists!)"
}
