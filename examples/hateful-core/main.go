// Hateful core: reproduce the §4.5.1 extraction — induce the mutual-
// follower subgraph over users with enough comments and high median
// toxicity, and report its connected components. Also demonstrates the
// broader social-network toolkit (degree power laws, PageRank,
// isolated-user counting).
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"dissenter/internal/repro"
)

func main() {
	res, err := repro.Run(context.Background(), repro.Options{Scale: 1.0 / 512, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Study

	// Network overview (§4.5.1).
	ss := s.SocialStats()
	fmt.Printf("Dissenter social graph: %d nodes, %d directed edges\n", ss.Nodes, ss.Edges)
	fmt.Printf("  isolated users (no followers, following no one): %d (paper: 15,702)\n", ss.Isolated)
	fmt.Printf("  degree power laws: alpha_in=%.2f alpha_out=%.2f\n", ss.InFit.Alpha, ss.OutFit.Alpha)
	fmt.Printf("  top follower counts: %v (paper: 10,705 / 9,588 / 8,183)\n", ss.TopInDegrees)
	fmt.Printf("  overlap of top-degree and top-commenter sets: %d (paper: none)\n\n",
		ss.TopDegreeProlificOverlap)

	// PageRank for orientation: who matters structurally?
	g := s.Graph()
	ranks := g.PageRank(0.85, 50, 1e-9)
	type ranked struct {
		name string
		r    float64
	}
	var top []ranked
	for name, r := range ranks {
		top = append(top, ranked{name, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top-5 PageRank users:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %d. %s (%.5f)\n", i+1, top[i].name, top[i].r)
	}

	// The hateful core (§4.5.1): mutual follows + >=N comments + median
	// toxicity >= 0.3.
	params := res.CoreParams()
	core := s.HatefulCore(params)
	fmt.Printf("\nhateful core (>=%d comments, median toxicity >= %.1f):\n",
		params.MinComments, params.MedianToxicity)
	fmt.Printf("  %d users in %d components (paper: 42 users, 6 components, largest 32)\n",
		core.TotalUsers, len(core.Components))
	tox := s.UserMedianToxicity()
	counts := s.UserCommentCounts()
	for i, comp := range core.Components {
		fmt.Printf("  component %d (%d members):\n", i+1, len(comp))
		for _, name := range comp {
			fmt.Printf("    %-24s comments=%-4d median_toxicity=%.2f\n",
				name, counts[name], tox[name])
		}
	}
}
