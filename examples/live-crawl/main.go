// Live crawl: the client/server pieces wired up by hand over real TCP —
// what cmd/dissenter-platform and cmd/dissenter-crawl do, in one process
// so you can read the whole flow top to bottom. Also demonstrates the
// politeness machinery: the Gab API runs WITH a rate limit here, and the
// crawler paces itself off the X-RateLimit headers.
//
// This example also reproduces the paper's moving-target condition
// (§3.2): a background poster writes comments through the live
// POST /discussion/comment write path while the campaign crawls, and
// the crawl stabilizes with revisit rounds until the mirror reaches a
// fixpoint — the platform grows under the measurement, exactly as the
// real one did.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dissenter/internal/dissentercrawl"
	"dissenter/internal/dissenterweb"
	"dissenter/internal/gabapi"
	"dissenter/internal/gabcrawl"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

func main() {
	// 1. Generate a small deployment.
	out := synth.Generate(synth.NewConfig(1.0/1024, 3))
	census := out.DB.Census()
	fmt.Printf("platform: %d Gab users (%d on Dissenter), %d comments\n",
		census.GabUsers, census.DissenterUsers, census.Comments)

	// 2. Serve the Gab API (rate-limited!) and the Dissenter web app.
	gabAddr := listen(gabapi.NewServer(out.DB,
		gabapi.WithRateLimit(5000, 2*time.Second)))
	web := dissenterweb.NewServer(out.DB, dissenterweb.WithURLRateLimit(0, 0))
	web.RegisterSession("nsfw", dissenterweb.Session{ShowNSFW: true})
	web.RegisterSession("off", dissenterweb.Session{ShowOffensive: true})
	writer := out.DB.ActiveUsers()[0]
	web.RegisterSession("writer", dissenterweb.Session{Username: writer.Username})
	webAddr := listen(web)
	fmt.Printf("serving gab api on %s, dissenter app on %s\n", gabAddr, webAddr)

	// 3. Start the background poster: live comments through
	// POST /discussion/comment while the crawl is underway, including a
	// thread minted mid-crawl on a never-before-seen URL.
	var targets []string
	out.DB.RangeURLs(func(cu *platform.CommentURL) bool {
		targets = append(targets, cu.URL)
		return len(targets) < 5
	})
	poster := &dissentercrawl.Poster{
		Web:         dissentercrawl.New("http://"+webAddr, nil, dissentercrawl.WithSession("writer")),
		URLs:        targets,
		FreshURLs:   []string{"https://live.example/breaking/mid-crawl-story"},
		N:           40,
		Interval:    2 * time.Millisecond,
		HiddenEvery: 8,
	}
	posterErr := make(chan error, 1)
	go func() { posterErr <- poster.Run(context.Background()) }()

	// 4. Run the measurement campaign across the wire while the poster
	// writes, then — once the poster is done — stabilize: revisit rounds
	// continue until the mirror reaches a fixpoint. Waiting for the
	// poster first makes the fixpoint meaningful; stabilizing under an
	// active writer can only ever converge by luck.
	campaign := &dissentercrawl.Campaign{
		Gab:          gabcrawl.New("http://"+gabAddr, nil),
		MaxGabID:     out.DB.MaxGabID(),
		Web:          dissentercrawl.New("http://"+webAddr, nil),
		NSFWWeb:      dissentercrawl.New("http://"+webAddr, nil, dissentercrawl.WithSession("nsfw")),
		OffensiveWeb: dissentercrawl.New("http://"+webAddr, nil, dissentercrawl.WithSession("off")),
		Workers:      8,
	}
	start := time.Now()
	ds, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := <-posterErr; err != nil {
		log.Fatal(err)
	}
	stable, err := campaign.Stabilize(context.Background(), ds, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl finished in %s (stable=%v, %d live comments posted mid-crawl)\n",
		time.Since(start).Round(time.Millisecond), stable, len(poster.Posted()))

	// 5. Compare the mirror against ground truth — recounted, because
	// the poster grew the platform while the campaign measured it.
	final := out.DB.Census()
	fmt.Printf("mirror:   %d users / %d truth\n", len(ds.Users), final.DissenterUsers)
	fmt.Printf("          %d comments / %d truth (%d posted live)\n",
		len(ds.Comments), final.Comments, final.Comments-census.Comments)
	nsfw, off := 0, 0
	for _, c := range ds.Comments {
		if c.NSFW {
			nsfw++
		}
		if c.Offensive {
			off++
		}
	}
	fmt.Printf("          %d NSFW / %d truth, %d offensive / %d truth (inferred differentially)\n",
		nsfw, final.NSFWComments, off, final.OffensiveComments)
}

// listen starts an HTTP server on a loopback port and returns its addr.
func listen(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h); err != nil && err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	return ln.Addr().String()
}
