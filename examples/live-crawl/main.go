// Live crawl: the client/server pieces wired up by hand over real TCP —
// what cmd/dissenter-platform and cmd/dissenter-crawl do, in one process
// so you can read the whole flow top to bottom. Also demonstrates the
// politeness machinery: the Gab API runs WITH a rate limit here, and the
// crawler paces itself off the X-RateLimit headers.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dissenter/internal/dissentercrawl"
	"dissenter/internal/dissenterweb"
	"dissenter/internal/gabapi"
	"dissenter/internal/gabcrawl"
	"dissenter/internal/synth"
)

func main() {
	// 1. Generate a small deployment.
	out := synth.Generate(synth.NewConfig(1.0/1024, 3))
	census := out.DB.Census()
	fmt.Printf("platform: %d Gab users (%d on Dissenter), %d comments\n",
		census.GabUsers, census.DissenterUsers, census.Comments)

	// 2. Serve the Gab API (rate-limited!) and the Dissenter web app.
	gabAddr := listen(gabapi.NewServer(out.DB,
		gabapi.WithRateLimit(5000, 2*time.Second)))
	web := dissenterweb.NewServer(out.DB, dissenterweb.WithURLRateLimit(0, 0))
	web.RegisterSession("nsfw", dissenterweb.Session{ShowNSFW: true})
	web.RegisterSession("off", dissenterweb.Session{ShowOffensive: true})
	webAddr := listen(web)
	fmt.Printf("serving gab api on %s, dissenter app on %s\n", gabAddr, webAddr)

	// 3. Run the measurement campaign across the wire.
	campaign := &dissentercrawl.Campaign{
		Gab:          gabcrawl.New("http://"+gabAddr, nil),
		MaxGabID:     out.DB.MaxGabID(),
		Web:          dissentercrawl.New("http://"+webAddr, nil),
		NSFWWeb:      dissentercrawl.New("http://"+webAddr, nil, dissentercrawl.WithSession("nsfw")),
		OffensiveWeb: dissentercrawl.New("http://"+webAddr, nil, dissentercrawl.WithSession("off")),
		Workers:      8,
	}
	start := time.Now()
	ds, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl finished in %s\n", time.Since(start).Round(time.Millisecond))

	// 4. Compare the mirror against ground truth.
	fmt.Printf("mirror:   %d users / %d truth\n", len(ds.Users), census.DissenterUsers)
	fmt.Printf("          %d comments / %d truth\n", len(ds.Comments), census.Comments)
	nsfw, off := 0, 0
	for _, c := range ds.Comments {
		if c.NSFW {
			nsfw++
		}
		if c.Offensive {
			off++
		}
	}
	fmt.Printf("          %d NSFW / %d truth, %d offensive / %d truth (inferred differentially)\n",
		nsfw, census.NSFWComments, off, census.OffensiveComments)
}

// listen starts an HTTP server on a loopback port and returns its addr.
func listen(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h); err != nil && err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	return ln.Addr().String()
}
