// Quickstart: run the whole reproduction at a tiny scale and print the
// headline numbers. This is the five-minute tour — one call generates a
// synthetic Gab+Dissenter deployment, serves it over loopback HTTP,
// mirrors it with the measurement crawlers, and hands back a Study with
// every analysis of the paper's §4.
package main

import (
	"context"
	"fmt"
	"log"

	"dissenter/internal/perspective"
	"dissenter/internal/repro"
	"dissenter/internal/stats"
)

func main() {
	res, err := repro.Run(context.Background(), repro.Options{
		Scale: 1.0 / 512, // ~200 users, ~3.5k comments; finishes in seconds
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	h := res.Study.Headline()
	fmt.Printf("Crawled %d Dissenter users (%d active), %d comments on %d URLs\n",
		h.Users, h.ActiveUsers, h.Comments, h.URLs)
	fmt.Printf("%.0f%% of accounts joined in Dissenter's first month\n", h.FirstMonthJoins*100)
	fmt.Printf("%d commenters' Gab accounts were deleted, but their comments persist\n",
		h.DeletedGabUsers)

	// Who is hateful? Score every comment with the SEVERE_TOXICITY model.
	sev := stats.NewECDF(res.Study.Scores(perspective.SevereToxicity))
	fmt.Printf("%.0f%% of comments score >= 0.5 on SEVERE_TOXICITY (paper: ~20%%)\n",
		sev.FractionAbove(0.5)*100)

	// The hateful core: mutually-following, prolific, toxic users.
	core := res.Study.HatefulCore(res.CoreParams())
	fmt.Printf("Hateful core: %d users in %d mutual-follow components (largest %d)\n",
		core.TotalUsers, len(core.Components), core.Largest)
}
