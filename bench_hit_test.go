// Cache-hit serving benchmarks: the zero-allocation edge path that
// composed-response cache entries enable. bench_concurrent_test.go
// pins the cache-MISS render cost (the fill is O(delta) in store
// mutations); these pin the HIT cost — a response-cache probe by a
// stack-built key, header assignment from precomputed slices, and a
// single Write of the composed body. No rendering, no gzip, no
// allocation. Run the parallel variants with -cpu 1,2,4 to see
// hit-path scaling; `make bench` records both into BENCH_serve.json.
//
// With BENCH_HIT_MAX_ALLOCS=<n> set (CI uses 0), the serial hit
// benchmarks fail when a hit allocates more than n objects per
// request. The count is a MemStats Mallocs delta rounded to the
// nearest integer: sub-0.5/op background noise (runtime timers, GC
// bookkeeping amortized over the measured iterations) cannot flake a
// zero budget, while any real per-request allocation — necessarily
// ≥ 1/op — still fails it.
package dissenter_test

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"

	"dissenter/internal/dissenterweb"
)

// hitAllocBudget enforces BENCH_HIT_MAX_ALLOCS against a measured
// allocations-per-op figure (see the package comment for the rounding
// rationale).
func hitAllocBudget(b *testing.B, allocsPerOp float64) {
	b.Helper()
	budget := os.Getenv("BENCH_HIT_MAX_ALLOCS")
	if budget == "" {
		return
	}
	max, err := strconv.ParseFloat(budget, 64)
	if err != nil {
		b.Fatalf("bad BENCH_HIT_MAX_ALLOCS %q: %v", budget, err)
	}
	if math.Round(allocsPerOp) > max {
		b.Fatalf("cache hit allocates %.2f objects/op, budget %v — the zero-alloc hit path regressed",
			allocsPerOp, budget)
	}
}

// hitBenchServer returns a default-cache server over the shared
// read-only fixture plus a warmed discussion request: one miss to fill
// and compose the entry, then the validator the 200 carried.
func hitBenchServer(b *testing.B, sc trendsScale) (*dissenterweb.Server, *http.Request, string) {
	b.Helper()
	f := trendsBenchFixture(b, sc)
	s := dissenterweb.NewServer(f.db, dissenterweb.WithURLRateLimit(0, 0))
	// Raw (unescaped) query: ':' and '/' are legal query bytes, and the
	// zero-copy query scan + URL fast path only stay allocation-free
	// when no percent-decoding is needed — which is how user agents
	// send these URLs in practice.
	req := httptest.NewRequest(http.MethodGet, "/discussion?url="+f.hot[0].URL, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm status = %d", rec.Code)
	}
	etag := rec.Header().Get("Etag")
	if etag == "" {
		b.Fatal("warm response carries no ETag — the composed-response path is not engaged")
	}
	return s, req, etag
}

// BenchmarkDiscussionHit measures one cache-hit serve of the viral-page
// shape (10k comments) — the acceptance gate is 0 allocs/op and at
// least 5x less time than DiscussionRenderMiss at the same scale,
// because a hit shovels composed bytes instead of rendering.
func BenchmarkDiscussionHit(b *testing.B) {
	sc := discussionScales[1]
	s, req, _ := hitBenchServer(b, sc)
	w := newDiscardRW()
	s.ServeHTTP(w, req) // pre-size w's header map so its buckets exist
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	recordServeMetrics("DiscussionHit/"+sc.name, map[string]float64{
		"ns_per_op":     nsPerOp,
		"allocs_per_op": allocsPerOp,
	})
	hitAllocBudget(b, allocsPerOp)
}

// BenchmarkDiscussionHit304 measures the revalidation fast path: a hit
// whose If-None-Match matches the live entry's ETag writes a bodyless
// 304 — cheaper still than a full hit, and under the same zero-alloc
// budget.
func BenchmarkDiscussionHit304(b *testing.B) {
	sc := discussionScales[1]
	s, warm, etag := hitBenchServer(b, sc)
	req := httptest.NewRequest(http.MethodGet, warm.URL.String(), nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		b.Fatalf("revalidation status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		b.Fatalf("304 carried %d body bytes", rec.Body.Len())
	}
	w := newDiscardRW()
	s.ServeHTTP(w, req)
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ServeHTTP(w, req)
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	recordServeMetrics("DiscussionHit304/"+sc.name, map[string]float64{
		"ns_per_op":     nsPerOp,
		"allocs_per_op": allocsPerOp,
	})
	hitAllocBudget(b, allocsPerOp)
}

// benchmarkHitParallel drives the in-process hit path from every
// GOMAXPROCS worker at once — the scaling story the -cpu 1,2,4 sweep
// in `make bench` records. One request and one discarding writer per
// goroutine; the server, its cache, and the composed entry are shared,
// so what this measures is contention on the read side of the shard
// lock and the atomic composed-pointer load.
func benchmarkHitParallel(b *testing.B, name, path string, f *trendsFixture) {
	s := dissenterweb.NewServer(f.db, dissenterweb.WithURLRateLimit(0, 0))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		b.Fatalf("warm %s status = %d", path, rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := newDiscardRW()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		for pb.Next() {
			s.ServeHTTP(w, req)
		}
	})
	b.StopTimer()
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	m := map[string]float64{"ns_per_op": nsPerOp}
	if hits, misses := s.CacheStats(); hits+misses > 0 {
		pct := float64(hits) / float64(hits+misses) * 100
		b.ReportMetric(pct, "cache_hit_pct")
		m["cache_hit_pct"] = pct
	}
	recordServeMetrics(fmt.Sprintf("%s/cpu=%d", name, runtime.GOMAXPROCS(0)), m)
}

func BenchmarkDiscussionHitParallel(b *testing.B) {
	f := trendsBenchFixture(b, discussionScales[1])
	benchmarkHitParallel(b, "DiscussionHitParallel", "/discussion?url="+f.hot[0].URL, f)
}

func BenchmarkTrendsHitParallel(b *testing.B) {
	f := trendsBenchFixture(b, trendsScales[0])
	benchmarkHitParallel(b, "TrendsHitParallel", "/trends", f)
}
