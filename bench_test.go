// Benchmarks that regenerate every table and figure of the paper's §4,
// plus ablations of the design choices DESIGN.md calls out. Each bench
// prints its artifact once (first run) and reports the figure's key
// quantities as custom metrics, so `go test -bench=. -benchmem` doubles
// as the reproduction harness.
//
// The shared fixture runs the full pipeline (generate → serve → crawl)
// once at the scale given by DISSENTER_SCALE (default 1/64).
package dissenter_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"dissenter/internal/allsides"
	"dissenter/internal/analysis"
	"dissenter/internal/gabcrawl"
	"dissenter/internal/hatespeech"
	"dissenter/internal/ids"
	"dissenter/internal/lexicon"
	"dissenter/internal/ml"
	"dissenter/internal/perspective"
	"dissenter/internal/report"
	"dissenter/internal/repro"
	"dissenter/internal/synth"
	"dissenter/internal/toxdict"
)

var (
	fixtureOnce sync.Once
	fixture     *repro.Result
	fixtureErr  error
	printed     sync.Map
)

func benchScale() float64 {
	if s := os.Getenv("DISSENTER_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return synth.DefaultScale
}

func pipeline(b *testing.B) *repro.Result {
	b.Helper()
	fixtureOnce.Do(func() {
		fixture, fixtureErr = repro.Run(context.Background(), repro.Options{
			Scale: benchScale(), Seed: 1,
		})
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixture
}

// printOnce emits an artifact the first time a bench runs.
func printOnce(name string, render func()) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		render()
	}
}

// ---------------------------------------------------------------------
// Tables

func BenchmarkTable1UserFlags(b *testing.B) {
	r := pipeline(b)
	var t1 analysis.Table1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 = r.Study.Table1()
	}
	b.ReportMetric(float64(t1.Filters["nsfw"])/float64(t1.N)*100, "nsfw_filter_pct")
	b.ReportMetric(float64(t1.Flags["isAdmin"]), "admins")
	printOnce("t1", func() {
		fmt.Printf("\nTable 1: n=%d nsfw-filter=%s offensive-filter=%s (paper 15.04%% / 7.33%%)\n",
			t1.N, report.Pct(float64(t1.Filters["nsfw"])/float64(t1.N)),
			report.Pct(float64(t1.Filters["offensive"])/float64(t1.N)))
	})
}

func BenchmarkTable2TLDDomains(b *testing.B) {
	r := pipeline(b)
	var t2 analysis.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 = r.Study.Table2()
	}
	ytShare := float64(t2.Domains[0].N) / float64(t2.Total) * 100
	b.ReportMetric(ytShare, "youtube_pct")
	printOnce("t2", func() {
		fmt.Printf("\nTable 2 top domains (paper: youtube 20.75%%, twitter 6.87%%):\n")
		for i := 0; i < 5 && i < len(t2.Domains); i++ {
			fmt.Printf("  %-22s %s\n", t2.Domains[i].Name,
				report.Pct(float64(t2.Domains[i].N)/float64(t2.Total)))
		}
	})
}

func BenchmarkTable3Baselines(b *testing.B) {
	r := pipeline(b)
	var rows []analysis.Table3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.Table3(r.NYT.NominalSize, r.DM.NominalSize,
			r.RedditCommentTotal(), len(r.Matches))
	}
	b.ReportMetric(float64(rows[2].DissenterUsers), "reddit_matched_users")
	printOnce("t3", func() {
		fmt.Printf("\nTable 3: NYT %s, DailyMail %s, Reddit %s comments / %s matched users\n",
			report.N(rows[0].Comments), report.N(rows[1].Comments),
			report.N(rows[2].Comments), report.N(rows[2].DissenterUsers))
	})
}

// ---------------------------------------------------------------------
// Figures

func BenchmarkFigure2GabIDGrowth(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = analysis.Figure2FromAccounts(r.Accounts)
	}
	b.ReportMetric(float64(fig.Inversions), "id_inversions")
	b.ReportMetric(fig.MonotoneFraction*100, "monotone_pct")
	printOnce("f2", func() {
		fmt.Printf("\nFigure 2: %d accounts, %d inversions (%.2f%% monotone; paper: two anomaly periods)\n",
			fig.Accounts, fig.Inversions, fig.MonotoneFraction*100)
	})
}

func BenchmarkFigure3CommentsCDF(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure3()
	}
	b.ReportMetric(fig.TopShare90*100, "top_share90_pct")
	printOnce("f3", func() {
		fmt.Printf("\nFigure 3: 90%% of comments from %s of active users (paper ~14%%)  %s\n",
			report.Pct(fig.TopShare90), report.Sparkline(fig.Curve))
	})
}

func BenchmarkFigure4ShadowToxicity(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure4()
	}
	b.ReportMetric(fig.OffensiveP20, "offensive_p20_ltr")
	printOnce("f4", func() {
		fmt.Println()
		for _, m := range analysis.Figure4Models {
			report.CDFBlock(os.Stdout, fmt.Sprintf("Figure 4 — %s", m), fig.ECDFs[m])
		}
	})
}

func BenchmarkFigure5ToxicityVsVotes(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure5()
	}
	b.ReportMetric(fig.ZeroVoteMean, "zero_vote_mean_tox")
	b.ReportMetric(fig.VotedMean, "voted_mean_tox")
	printOnce("f5", func() {
		fmt.Printf("\nFigure 5: zero-vote URLs %d / +%d / -%d; zero-vote mean %.3f > voted %.3f (paper: zero-vote most toxic)\n",
			fig.ZeroURLs, fig.PositiveURLs, fig.NegativeURLs, fig.ZeroVoteMean, fig.VotedMean)
	})
}

func BenchmarkFigure6CommentRatio(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure6
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure6(r.Matches)
	}
	b.ReportMetric(fig.DissenterOnly*100, "dissenter_only_pct")
	b.ReportMetric(fig.RedditOnly*100, "reddit_only_pct")
	printOnce("f6", func() {
		fmt.Printf("\nFigure 6: %d matched; Dissenter-only %s (paper >1/3), Reddit-only %s (paper ~20%%)\n",
			fig.MatchedUsers, report.Pct(fig.DissenterOnly), report.Pct(fig.RedditOnly))
	})
}

func benchFigure7(b *testing.B, m perspective.Model, metric string) {
	r := pipeline(b)
	sources := r.Figure7Sources()
	var fig analysis.Figure7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure7(m, sources)
	}
	b.ReportMetric(fig.ECDFs["Dissenter"].FractionAbove(0.5)*100, metric)
	printOnce("f7-"+string(m), func() {
		fmt.Println()
		report.CDFBlock(os.Stdout, fmt.Sprintf("Figure 7 — %s by platform", m), fig.ECDFs)
	})
}

func BenchmarkFigure7aLikelyToReject(b *testing.B) {
	benchFigure7(b, perspective.LikelyToReject, "dissenter_above50_pct")
}

func BenchmarkFigure7bSevereToxicity(b *testing.B) {
	benchFigure7(b, perspective.SevereToxicity, "dissenter_above50_pct")
}

func BenchmarkFigure7cAttackOnAuthor(b *testing.B) {
	benchFigure7(b, perspective.AttackOnAuthor, "dissenter_above50_pct")
}

func BenchmarkFigure8aToxicityByBias(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure8()
	}
	b.ReportMetric(fig.Summaries[allsides.Right].Mean, "right_mean_tox")
	b.ReportMetric(fig.Summaries[allsides.Center].Mean, "center_mean_tox")
	printOnce("f8a", func() {
		fmt.Printf("\nFigure 8a SEVERE_TOXICITY means by bias (paper: center highest, right lowest):\n")
		for _, bias := range allsides.AllCategories() {
			fmt.Printf("  %-13s n=%-7d mean=%.3f median=%.3f\n", bias,
				fig.Summaries[bias].N, fig.Summaries[bias].Mean, fig.Summaries[bias].Median)
		}
		ks := fig.KS[[2]allsides.Bias{allsides.Center, allsides.Right}]
		fmt.Printf("  KS center-vs-right: D=%.3f p=%.2g (paper: all pairs p<0.01)\n", ks.D, ks.P)
	})
}

func BenchmarkFigure8bAttackByBias(b *testing.B) {
	r := pipeline(b)
	var fig analysis.Figure8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = r.Study.Figure8()
	}
	left := fig.AttackECDFs[allsides.Left].FractionAbove(0.5)
	right := fig.AttackECDFs[allsides.Right].FractionAbove(0.5)
	b.ReportMetric(left*100, "left_attack_pct")
	b.ReportMetric(right*100, "right_attack_pct")
	printOnce("f8b", func() {
		fmt.Printf("\nFigure 8b ATTACK_ON_AUTHOR >= 0.5: left %s vs right %s (paper: left highest, decreasing rightward)\n",
			report.Pct(left), report.Pct(right))
	})
}

func BenchmarkFigure9aDegrees(b *testing.B) {
	r := pipeline(b)
	var ss analysis.SocialStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss = r.Study.SocialStats()
	}
	b.ReportMetric(ss.InFit.Alpha, "alpha_in")
	b.ReportMetric(ss.OutFit.Alpha, "alpha_out")
	printOnce("f9a", func() {
		fmt.Printf("\nFigure 9a: %d nodes, %d edges, %d isolated; alpha_in=%.2f alpha_out=%.2f (paper: power law both)\n",
			ss.Nodes, ss.Edges, ss.Isolated, ss.InFit.Alpha, ss.OutFit.Alpha)
	})
}

func BenchmarkFigure9bToxicityVsFollowers(b *testing.B) {
	r := pipeline(b)
	var ss analysis.SocialStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss = r.Study.SocialStats()
	}
	b.ReportMetric(float64(len(ss.ToxicityVsFollowersMean)), "bins")
	printOnce("f9b", func() {
		fmt.Printf("\nFigure 9b toxicity vs followers: mean %s median %s\n",
			report.Sparkline(ss.ToxicityVsFollowersMean), report.Sparkline(ss.ToxicityVsFollowersMedian))
	})
}

func BenchmarkFigure9cToxicityVsFollowing(b *testing.B) {
	r := pipeline(b)
	var ss analysis.SocialStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss = r.Study.SocialStats()
	}
	b.ReportMetric(float64(len(ss.ToxicityVsFollowingMean)), "bins")
	printOnce("f9c", func() {
		fmt.Printf("\nFigure 9c toxicity vs following: mean %s median %s\n",
			report.Sparkline(ss.ToxicityVsFollowingMean), report.Sparkline(ss.ToxicityVsFollowingMedian))
	})
}

// ---------------------------------------------------------------------
// In-text statistics

func BenchmarkHeadlineStats(b *testing.B) {
	r := pipeline(b)
	var h analysis.Headline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = r.Study.Headline()
	}
	b.ReportMetric(h.ActiveFraction*100, "active_pct")
	b.ReportMetric(h.FirstMonthJoins*100, "first_month_pct")
	printOnce("s1", func() {
		fmt.Printf("\nS1: %d users (%.0f%% active), %d comments, %d URLs; %.0f%% joined month one; %d deleted-Gab commenters\n",
			h.Users, h.ActiveFraction*100, h.Comments, h.URLs, h.FirstMonthJoins*100, h.DeletedGabUsers)
	})
}

func BenchmarkYouTubeBreakdown(b *testing.B) {
	r := pipeline(b)
	var bd analysis.YouTubeBreakdown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd = analysis.YouTubeBreakdownFrom(r.YTSummary, r.Out.YouTube.OwnerTotal)
	}
	b.ReportMetric(bd.ActiveCommentsDisabledShare*100, "comments_disabled_pct")
	b.ReportMetric(bd.FoxCoverage*100, "fox_coverage_pct")
	printOnce("s2", func() {
		fmt.Printf("\nS2 YouTube: %d URLs; comments disabled %s (paper 10%%); Fox coverage %s vs CNN %s (paper 4.7%% vs 0.5%%)\n",
			bd.URLs, report.Pct(bd.ActiveCommentsDisabledShare),
			report.Pct(bd.FoxCoverage), report.Pct(bd.CNNCoverage))
	})
}

func BenchmarkLanguageMix(b *testing.B) {
	r := pipeline(b)
	var mix analysis.LanguageMix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mix = r.Study.LanguageMix()
	}
	b.ReportMetric(mix.Shares["en"]*100, "english_pct")
	b.ReportMetric(mix.Shares["de"]*100, "german_pct")
	printOnce("s3", func() {
		fmt.Printf("\nS3 languages: en %s (paper 94%%), de %s (paper 2%%)\n",
			report.Pct(mix.Shares["en"]), report.Pct(mix.Shares["de"]))
	})
}

func BenchmarkShadowOverlay(b *testing.B) {
	r := pipeline(b)
	var so analysis.ShadowOverlay
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		so = r.Study.ShadowOverlay()
	}
	b.ReportMetric(so.NSFWRate*100, "nsfw_pct")
	b.ReportMetric(so.OffRate*100, "offensive_pct")
	printOnce("s4", func() {
		fmt.Printf("\nS4 shadow overlay: %d NSFW (%s; paper 0.6%%), %d offensive (%s; paper 0.5%%)\n",
			so.NSFW, report.Pct(so.NSFWRate), so.Offensive, report.Pct(so.OffRate))
	})
}

func BenchmarkHatefulCore(b *testing.B) {
	r := pipeline(b)
	params := r.CoreParams()
	var core analysis.HatefulCore
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core = r.Study.HatefulCore(params)
	}
	b.ReportMetric(float64(core.TotalUsers), "core_users")
	b.ReportMetric(float64(len(core.Components)), "components")
	printOnce("s5", func() {
		sizes := make([]int, len(core.Components))
		for i, c := range core.Components {
			sizes[i] = len(c)
		}
		fmt.Printf("\nS5 hateful core: %d users in %d components %v (paper: 42 users, 6 components, largest 32)\n",
			core.TotalUsers, len(core.Components), sizes)
	})
}

func BenchmarkSVMTraining(b *testing.B) {
	// §3.5.3 at a fixed training scale so the bench is comparable across
	// corpus scales.
	c := hatespeech.SyntheticCorpus(0.05, 1)
	cfg := hatespeech.DefaultTrainConfig()
	var res ml.KFoldResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = hatespeech.CrossValidate(c, 5, cfg)
	}
	b.ReportMetric(res.MeanF1, "weighted_f1")
	printOnce("s6", func() {
		fmt.Printf("\nS6 NLP: 5-fold weighted F1 %.3f (paper 0.87)\n", res.MeanF1)
	})
}

func BenchmarkCovertChannels(b *testing.B) {
	r := pipeline(b)
	var cc analysis.CovertChannels
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc = r.Study.CovertChannels()
	}
	b.ReportMetric(float64(cc.BySignal[analysis.SignalNonWebScheme]), "nonweb_anchors")
	b.ReportMetric(float64(cc.Conversations), "hidden_conversations")
	printOnce("s7", func() {
		fmt.Printf("\n§6 covert screening: %d non-web anchors (%d file leaks), %d multi-party hidden conversations\n",
			cc.BySignal[analysis.SignalNonWebScheme], cc.BySignal[analysis.SignalLocalFile], cc.Conversations)
	})
}

func BenchmarkProactiveDefense(b *testing.B) {
	r := pipeline(b)
	var def analysis.DefenseSummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		def = r.Study.ProactiveDefenseSweep(10, 3, 0.3, 1)
	}
	b.ReportMetric(def.MeanInjectionRatio, "injection_ratio")
	printOnce("s8", func() {
		fmt.Printf("\n§6 proactive defense: %d/%d toxic pages flippable; mean effort %.1fx organic volume\n",
			def.FeasiblePages, def.PagesEvaluated, def.MeanInjectionRatio)
	})
}

// ---------------------------------------------------------------------
// Ablations

// BenchmarkAblationADASYN quantifies what the oversampling buys: minority
// (hate) recall with and without ADASYN.
func BenchmarkAblationADASYN(b *testing.B) {
	c := hatespeech.SyntheticCorpus(0.05, 1)
	with := hatespeech.DefaultTrainConfig()
	without := hatespeech.DefaultTrainConfig()
	without.ADASYN = nil
	recall := func(res ml.KFoldResult) float64 {
		var sum float64
		for _, conf := range res.Confusions {
			sum += conf.Recall(int(hatespeech.Hate))
		}
		return sum / float64(len(res.Confusions))
	}
	var rWith, rWithout float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rWith = recall(hatespeech.CrossValidate(c, 3, with))
		rWithout = recall(hatespeech.CrossValidate(c, 3, without))
	}
	b.ReportMetric(rWith, "hate_recall_adasyn")
	b.ReportMetric(rWithout, "hate_recall_baseline")
	printOnce("ab1", func() {
		fmt.Printf("\nAblation ADASYN: hate recall %.3f with vs %.3f without\n", rWith, rWithout)
	})
}

// BenchmarkAblationNGramOrder compares the paper's 1+2-gram features
// against unigrams only.
func BenchmarkAblationNGramOrder(b *testing.B) {
	c := hatespeech.SyntheticCorpus(0.05, 1)
	f1For := func(maxN int) float64 {
		vec := ml.NewVectorizer()
		vec.MaxN = maxN
		xs := vec.FitTransform(c.Texts)
		ys := make([]int, len(c.Labels))
		for i, l := range c.Labels {
			ys[i] = int(l)
		}
		ds := ml.Dataset{X: xs, Y: ys}
		return ml.CrossValidate(ds, vec.VocabSize(), 3, ml.DefaultSVMConfig(), nil).MeanF1
	}
	var uni, bi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uni = f1For(1)
		bi = f1For(2)
	}
	b.ReportMetric(uni, "f1_unigram")
	b.ReportMetric(bi, "f1_bigram")
	printOnce("ab2", func() {
		fmt.Printf("\nAblation n-grams: F1 %.3f (1-gram) vs %.3f (1+2-gram)\n", uni, bi)
	})
}

// BenchmarkAblationAmbiguousTerms quantifies the dictionary's known
// false-positive surface (the paper's "queen"/"pig" discussion).
func BenchmarkAblationAmbiguousTerms(b *testing.B) {
	r := pipeline(b)
	texts := r.DS.Texts()
	full := toxdict.Default()
	strict := toxdict.Default(toxdict.WithoutAmbiguous())
	var fullHits, strictHits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fullHits, strictHits = 0, 0
		for _, txt := range texts {
			if full.Score(txt) > 0 {
				fullHits++
			}
			if strict.Score(txt) > 0 {
				strictHits++
			}
		}
	}
	b.ReportMetric(float64(fullHits), "matches_full")
	b.ReportMetric(float64(strictHits), "matches_no_ambiguous")
	printOnce("ab3", func() {
		fmt.Printf("\nAblation ambiguous terms: %d comments match full dictionary, %d without ambiguous terms (%.1f%% are potential FPs)\n",
			fullHits, strictHits, 100*float64(fullHits-strictHits)/float64(max(1, fullHits)))
	})
}

// BenchmarkAblationStemming compares dictionary hit rates with and
// without the Porter-stem match path by scoring raw-token matches only.
func BenchmarkAblationStemming(b *testing.B) {
	r := pipeline(b)
	texts := r.DS.Texts()
	dict := lexicon.Hatebase()
	exactOnly := func(txt string) bool {
		for _, tok := range tokenize(txt) {
			if _, ok := dict.MatchStem(tok); ok { // raw token as stem key
				return true
			}
		}
		return false
	}
	stemmed := toxdict.Default()
	var stemHits, exactHits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stemHits, exactHits = 0, 0
		for _, txt := range texts {
			if stemmed.Score(txt) > 0 {
				stemHits++
			}
			if exactOnly(txt) {
				exactHits++
			}
		}
	}
	b.ReportMetric(float64(stemHits), "matches_stemmed")
	b.ReportMetric(float64(exactHits), "matches_exact")
	printOnce("ab4", func() {
		fmt.Printf("\nAblation stemming: %d comments match with stemming vs %d raw-token (+%.1f%%)\n",
			stemHits, exactHits, 100*float64(stemHits-exactHits)/float64(max(1, exactHits)))
	})
}

// tokenize is a minimal splitter for the stemming ablation.
func tokenize(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		isWord := i < len(s) && (s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z')
		if isWord && start < 0 {
			start = i
		}
		if !isWord && start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BenchmarkGridSearch exercises the paper's hyper-parameter tuning
// ("using grid search to tune the hyperparameters"): a lambda/epochs
// sweep under cross-validation.
func BenchmarkGridSearch(b *testing.B) {
	c := hatespeech.SyntheticCorpus(0.02, 1)
	vec := ml.NewVectorizer()
	xs := vec.FitTransform(c.Texts)
	ys := make([]int, len(c.Labels))
	for i, l := range c.Labels {
		ys[i] = int(l)
	}
	ds := ml.Dataset{X: xs, Y: ys}
	var points []ml.GridPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = ml.GridSearch(ds, vec.VocabSize(), 3,
			[]float64{1e-3, 1e-4, 1e-5}, []int{3, 6}, nil, 1)
	}
	b.ReportMetric(points[0].MeanF1, "best_f1")
	b.ReportMetric(points[0].Config.Lambda, "best_lambda")
	printOnce("grid", func() {
		fmt.Printf("\nGrid search: best F1 %.3f at lambda=%g epochs=%d (of %d points)\n",
			points[0].MeanF1, points[0].Config.Lambda, points[0].Config.Epochs, len(points))
	})
}

// BenchmarkAblationEnumVsBFS quantifies §3.1's methodology switch: the
// failed follower-graph harvest versus exhaustive ID enumeration.
func BenchmarkAblationEnumVsBFS(b *testing.B) {
	r := pipeline(b)
	gabURL, stop, err := repro.ServeGabAPI(r.Out.DB)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	client := gabcrawl.New(gabURL, nil)
	ctx := context.Background()
	var enum, bfs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := client.Enumerate(ctx, r.Out.DB.MaxGabID(), 16)
		if err != nil {
			b.Fatal(err)
		}
		walked, err := client.CrawlFollowerGraph(ctx, []ids.GabID{2}, 10, 16)
		if err != nil {
			b.Fatal(err)
		}
		enum, bfs = len(full), len(walked)
	}
	b.ReportMetric(float64(enum), "enumerated")
	b.ReportMetric(float64(bfs), "bfs_found")
	printOnce("ab5", func() {
		fmt.Printf("\nAblation §3.1 harvest method: enumeration %d vs follower-BFS %d accounts (%.1f%% coverage) — why the paper switched\n",
			enum, bfs, 100*float64(bfs)/float64(max(1, enum)))
	})
}
