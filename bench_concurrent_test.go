// Concurrent-load benchmarks for the sharded platform store and the
// HTTP simulators in front of it. Run with -cpu to see scaling, e.g.
//
//	go test -bench=Concurrent -cpu 1,2,4,8 .
//
// The store benchmarks measure raw index throughput; the httptest-driven
// ones measure what a crawler fleet actually experiences, with and
// without the response cache.
package dissenter_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/gabapi"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

var (
	loadOnce sync.Once
	loadOut  *synth.Output
)

// loadFixture is a dedicated small corpus for the load benchmarks,
// independent of the full-pipeline fixture so `-bench=Concurrent` runs
// start fast.
func loadFixture(b *testing.B) *synth.Output {
	b.Helper()
	loadOnce.Do(func() {
		loadOut = synth.Generate(synth.NewConfig(1.0/256, 7))
	})
	return loadOut
}

func BenchmarkStoreConcurrentReads(b *testing.B) {
	out := loadFixture(b)
	db := out.DB
	users := db.Users()
	urls := db.URLs()
	maxID := int64(db.MaxGabID())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			_ = db.UserByGabID(ids.GabID(1 + int64(i)%maxID))
			u := users[i%len(users)]
			_ = db.UserByUsername(u.Username)
			cu := urls[i%len(urls)]
			for _, c := range db.CommentsOnURL(cu.ID) {
				_ = c.IsReply()
			}
			_, _ = db.Votes(cu.ID)
			_ = db.Followers(u.GabID)
		}
	})
}

func BenchmarkStoreConcurrentMixed(b *testing.B) {
	// ~6% writes (submit + vote), the rest reads — a trends-heavy day.
	// Private fixture: this benchmark grows the store, and sharing it
	// would order-couple the read-only benchmarks that follow.
	out := synth.Generate(synth.NewConfig(1.0/256, 7))
	db := out.DB
	urls := db.URLs()
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen := ids.NewGenerator(uint64(seq.Add(1)) * 7919)
		i := 0
		for pb.Next() {
			i++
			cu := urls[i%len(urls)]
			if i%16 == 0 {
				n := seq.Add(1)
				submitted, _ := db.SubmitURL(&platform.CommentURL{
					ID:        gen.New(),
					URL:       fmt.Sprintf("https://bench.example/%d", n%4096),
					FirstSeen: time.Now(),
				})
				db.Vote(submitted.ID, 1, 0)
				continue
			}
			for _, c := range db.CommentsOnURL(cu.ID) {
				_ = c.Hidden()
			}
			_, _ = db.Votes(cu.ID)
		}
	})
}

// benchClient is a keep-alive client sized for the parallel benchmarks.
func benchClient() *http.Client {
	tr := &http.Transport{MaxIdleConnsPerHost: 256}
	return &http.Client{Transport: tr}
}

func benchGet(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func BenchmarkGabAPIConcurrentLoad(b *testing.B) {
	out := loadFixture(b)
	srv := httptest.NewServer(gabapi.NewServer(out.DB, gabapi.WithRateLimit(0, 0)))
	defer srv.Close()
	client := benchClient()
	maxID := int64(out.DB.MaxGabID())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			benchGet(b, client, fmt.Sprintf("%s/api/v1/accounts/%d", srv.URL, 1+int64(i)%maxID))
		}
	})
}

func benchmarkDiscussionLoad(b *testing.B, opts ...dissenterweb.Option) {
	out := loadFixture(b)
	opts = append([]dissenterweb.Option{dissenterweb.WithURLRateLimit(0, 0)}, opts...)
	s := dissenterweb.NewServer(out.DB, opts...)
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	urls := out.DB.URLs()
	// A zipf-less stand-in for crawler locality: cycle a small hot set.
	hot := urls
	if len(hot) > 64 {
		hot = hot[:64]
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			benchGet(b, client, srv.URL+"/discussion?url="+url.QueryEscape(hot[i%len(hot)].URL))
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "cache_hit_pct")
	}
}

func BenchmarkWebDiscussionConcurrentCached(b *testing.B) {
	benchmarkDiscussionLoad(b)
}

func BenchmarkWebDiscussionConcurrentUncached(b *testing.B) {
	benchmarkDiscussionLoad(b, dissenterweb.WithResponseCache(0, 0))
}

// BenchmarkWebMixedReadWriteConcurrent is the live-growth load shape:
// a crawler fleet hammering discussion pages while comments stream in
// through POST /discussion/comment (~3% writes). It reports the cache
// hit rate and then asserts coherence: after the load stops, the very
// next render of every hot page must agree with the store's comment
// count — a dropped write-path invalidation fails the benchmark, not
// just a test.
func BenchmarkWebMixedReadWriteConcurrent(b *testing.B) {
	// Private fixture: writes grow the store, and sharing loadFixture
	// would order-couple the read-only benchmarks.
	out := synth.Generate(synth.NewConfig(1.0/256, 7))
	s := dissenterweb.NewServer(out.DB, dissenterweb.WithURLRateLimit(0, 0))
	writer := out.DB.ActiveUsers()[0]
	s.RegisterSession("bench-writer", dissenterweb.Session{Username: writer.Username})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	hot := out.DB.URLs()
	if len(hot) > 64 {
		hot = hot[:64]
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			cu := hot[i%len(hot)]
			if i%32 == 0 {
				form := url.Values{
					"url":  {cu.URL},
					"text": {fmt.Sprintf("bench live comment %d", i)},
				}
				// b.Errorf, not Fatal: FailNow must stay off RunParallel
				// worker goroutines.
				req, err := http.NewRequest(http.MethodPost, srv.URL+"/discussion/comment",
					strings.NewReader(form.Encode()))
				if err != nil {
					b.Errorf("build post: %v", err)
					return
				}
				req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
				req.AddCookie(&http.Cookie{Name: "session", Value: "bench-writer"})
				resp, err := client.Do(req)
				if err != nil {
					b.Errorf("post: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("post status = %d", resp.StatusCode)
					return
				}
				continue
			}
			benchGet(b, client, srv.URL+"/discussion?url="+url.QueryEscape(cu.URL))
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "cache_hit_pct")
	}
	// Staleness assertion: every hot page's next render (cached or not)
	// must carry the store's current visible-comment count.
	countRe := regexp.MustCompile(`class="commentcount">(\d+)<`)
	for _, cu := range hot {
		resp, err := client.Get(srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL))
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		m := countRe.FindSubmatch(body)
		if m == nil {
			b.Fatalf("no commentcount on %s", cu.URL)
		}
		visible := 0
		for _, c := range out.DB.CommentsOnURL(cu.ID) {
			if !c.Hidden() {
				visible++
			}
		}
		if got, _ := strconv.Atoi(string(m[1])); got != visible {
			b.Fatalf("stale render of %s: shows %d comments, store holds %d visible", cu.URL, got, visible)
		}
	}
}

func BenchmarkWebTrendsConcurrentCached(b *testing.B) {
	out := loadFixture(b)
	s := dissenterweb.NewServer(out.DB, dissenterweb.WithURLRateLimit(0, 0))
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, client, srv.URL+"/trends")
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "cache_hit_pct")
	}
}
