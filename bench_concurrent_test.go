// Concurrent-load benchmarks for the sharded platform store and the
// HTTP simulators in front of it. Run with -cpu to see scaling, e.g.
//
//	go test -bench=Concurrent -cpu 1,2,4,8 .
//
// The store benchmarks measure raw index throughput; the httptest-driven
// ones measure what a crawler fleet actually experiences, with and
// without the response cache.
package dissenter_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/gabapi"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/synth"
)

var (
	loadOnce sync.Once
	loadOut  *synth.Output
)

// loadFixture is a dedicated small corpus for the load benchmarks,
// independent of the full-pipeline fixture so `-bench=Concurrent` runs
// start fast.
func loadFixture(b *testing.B) *synth.Output {
	b.Helper()
	loadOnce.Do(func() {
		loadOut = synth.Generate(synth.NewConfig(1.0/256, 7))
	})
	return loadOut
}

func BenchmarkStoreConcurrentReads(b *testing.B) {
	out := loadFixture(b)
	db := out.DB
	users := allUsers(db)
	urls := allURLs(db)
	maxID := int64(db.MaxGabID())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			_ = db.UserByGabID(ids.GabID(1 + int64(i)%maxID))
			u := users[i%len(users)]
			_ = db.UserByUsername(u.Username)
			cu := urls[i%len(urls)]
			for _, c := range db.CommentsOnURL(cu.ID) {
				_ = c.IsReply()
			}
			_, _ = db.Votes(cu.ID)
			_ = db.Followers(u.GabID)
		}
	})
}

func BenchmarkStoreConcurrentMixed(b *testing.B) {
	// ~6% writes (submit + vote), the rest reads — a trends-heavy day.
	// Private fixture: this benchmark grows the store, and sharing it
	// would order-couple the read-only benchmarks that follow.
	out := synth.Generate(synth.NewConfig(1.0/256, 7))
	db := out.DB
	urls := allURLs(db)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen := ids.NewGenerator(uint64(seq.Add(1)) * 7919)
		i := 0
		for pb.Next() {
			i++
			cu := urls[i%len(urls)]
			if i%16 == 0 {
				n := seq.Add(1)
				submitted, _ := db.SubmitURL(&platform.CommentURL{
					ID:        gen.New(),
					URL:       fmt.Sprintf("https://bench.example/%d", n%4096),
					FirstSeen: time.Now(),
				})
				db.Vote(submitted.ID, 1, 0)
				continue
			}
			for _, c := range db.CommentsOnURL(cu.ID) {
				_ = c.Hidden()
			}
			_, _ = db.Votes(cu.ID)
		}
	})
}

// benchClient is a keep-alive client sized for the parallel benchmarks.
func benchClient() *http.Client {
	tr := &http.Transport{MaxIdleConnsPerHost: 256}
	return &http.Client{Transport: tr}
}

// underLoadBatch is how many requests each under-write-load benchmark
// op issues. The mixed-load benchmarks used to issue ONE request per
// op, so the `make bench` smoke run (-benchtime=1x) measured a single
// guaranteed cold miss and recorded cache_hit_pct: 0 into
// BENCH_serve.json — a stat-plumbing artifact, not a real stampede.
// Batching makes even a 1x run exercise the read/write mix the
// benchmark is about; ns_per_req in the baseline is per REQUEST, not
// per op.
const underLoadBatch = 32

// benchPostComment submits one live comment as bench-writer and fails
// the benchmark on any transport or status error. b.Errorf, not Fatal:
// FailNow must stay off RunParallel worker goroutines.
func benchPostComment(b *testing.B, client *http.Client, base, pageURL, text string) bool {
	form := url.Values{"url": {pageURL}, "text": {text}}
	req, err := http.NewRequest(http.MethodPost, base+"/discussion/comment",
		strings.NewReader(form.Encode()))
	if err != nil {
		b.Errorf("build post: %v", err)
		return false
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.AddCookie(&http.Cookie{Name: "session", Value: "bench-writer"})
	resp, err := client.Do(req)
	if err != nil {
		b.Errorf("post: %v", err)
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Errorf("post status = %d", resp.StatusCode)
		return false
	}
	return true
}

func benchGet(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func BenchmarkGabAPIConcurrentLoad(b *testing.B) {
	out := loadFixture(b)
	srv := httptest.NewServer(gabapi.NewServer(out.DB, gabapi.WithRateLimit(0, 0)))
	defer srv.Close()
	client := benchClient()
	maxID := int64(out.DB.MaxGabID())
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			benchGet(b, client, fmt.Sprintf("%s/api/v1/accounts/%d", srv.URL, 1+int64(i)%maxID))
		}
	})
}

func benchmarkDiscussionLoad(b *testing.B, opts ...dissenterweb.Option) {
	out := loadFixture(b)
	opts = append([]dissenterweb.Option{dissenterweb.WithURLRateLimit(0, 0)}, opts...)
	s := dissenterweb.NewServer(out.DB, opts...)
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	urls := allURLs(out.DB)
	// A zipf-less stand-in for crawler locality: cycle a small hot set.
	hot := urls
	if len(hot) > 64 {
		hot = hot[:64]
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			benchGet(b, client, srv.URL+"/discussion?url="+url.QueryEscape(hot[i%len(hot)].URL))
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "cache_hit_pct")
	}
}

func BenchmarkWebDiscussionConcurrentCached(b *testing.B) {
	benchmarkDiscussionLoad(b)
}

func BenchmarkWebDiscussionConcurrentUncached(b *testing.B) {
	benchmarkDiscussionLoad(b, dissenterweb.WithResponseCache(0, 0))
}

// BenchmarkWebMixedReadWriteConcurrent is the live-growth load shape:
// a crawler fleet hammering discussion pages while comments stream in
// through POST /discussion/comment (~3% writes). It reports the cache
// hit rate and then asserts coherence: after the load stops, the very
// next render of every hot page must agree with the store's comment
// count — a dropped write-path invalidation fails the benchmark, not
// just a test.
func BenchmarkWebMixedReadWriteConcurrent(b *testing.B) {
	// Private fixture: writes grow the store, and sharing loadFixture
	// would order-couple the read-only benchmarks.
	out := synth.Generate(synth.NewConfig(1.0/256, 7))
	s := dissenterweb.NewServer(out.DB, dissenterweb.WithURLRateLimit(0, 0))
	writer := out.DB.ActiveUsers()[0]
	s.RegisterSession("bench-writer", dissenterweb.Session{Username: writer.Username})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	hot := allURLs(out.DB)
	if len(hot) > 64 {
		hot = hot[:64]
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			cu := hot[i%len(hot)]
			if i%32 == 0 {
				form := url.Values{
					"url":  {cu.URL},
					"text": {fmt.Sprintf("bench live comment %d", i)},
				}
				// b.Errorf, not Fatal: FailNow must stay off RunParallel
				// worker goroutines.
				req, err := http.NewRequest(http.MethodPost, srv.URL+"/discussion/comment",
					strings.NewReader(form.Encode()))
				if err != nil {
					b.Errorf("build post: %v", err)
					return
				}
				req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
				req.AddCookie(&http.Cookie{Name: "session", Value: "bench-writer"})
				resp, err := client.Do(req)
				if err != nil {
					b.Errorf("post: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("post status = %d", resp.StatusCode)
					return
				}
				continue
			}
			benchGet(b, client, srv.URL+"/discussion?url="+url.QueryEscape(cu.URL))
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "cache_hit_pct")
	}
	// Staleness assertion: every hot page's next render (cached or not)
	// must carry the store's current visible-comment count.
	countRe := regexp.MustCompile(`class="commentcount">(\d+)<`)
	for _, cu := range hot {
		resp, err := client.Get(srv.URL + "/discussion?url=" + url.QueryEscape(cu.URL))
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		m := countRe.FindSubmatch(body)
		if m == nil {
			b.Fatalf("no commentcount on %s", cu.URL)
		}
		visible := 0
		for _, c := range out.DB.CommentsOnURL(cu.ID) {
			if !c.Hidden() {
				visible++
			}
		}
		if got, _ := strconv.Atoi(string(m[1])); got != visible {
			b.Fatalf("stale render of %s: shows %d comments, store holds %d visible", cu.URL, got, visible)
		}
	}
}

// --- trends scaling benchmarks ------------------------------------------
//
// The trends ranking is write-maintained (platform trend index), so a
// cache-miss render must cost O(TrendLimit) regardless of store size.
// BenchmarkTrendsRenderMiss pins the render cost itself at two store
// sizes two orders of magnitude apart — ns/op and allocs/op must stay
// within the same ballpark, where the old full-scan ranking scaled
// ~linearly with the URL table. BenchmarkTrendsUnderWriteLoad is the
// adversarial §3.2 load shape: concurrent posters invalidating every
// cached trends view while readers hammer the portal.
//
// With BENCH_SERVE_JSON=<path> set, the serving-path metrics are
// written as a machine-readable baseline (make bench emits
// BENCH_serve.json). With BENCH_TRENDS_MAX_ALLOCS=<n> set,
// BenchmarkTrendsRenderMiss fails if a render allocates more than n
// objects — the CI bench-smoke budget that catches allocation
// regressions on the hot path.

// trendsScale is one benchmark store size.
type trendsScale struct {
	name            string
	urls, per       int // per = comments per URL
	authors         int
	nsfwMod, offMod int // every n-th comment carries the flag
}

var trendsScales = []trendsScale{
	{name: "urls=1k_comments=10k", urls: 1_000, per: 10, authors: 64, nsfwMod: 13, offMod: 17},
	{name: "urls=100k_comments=1M", urls: 100_000, per: 10, authors: 64, nsfwMod: 13, offMod: 17},
}

type trendsFixture struct {
	db     *platform.DB
	writer *platform.User
	hot    []*platform.CommentURL
}

var (
	trendsFixMu  sync.Mutex
	trendsFixSet = map[string]*trendsFixture{}
)

// trendsBenchFixture returns the process-cached read-only store for a
// size; write benchmarks must use buildTrendsFixture directly so they
// never mutate the fixture other sub-benchmarks measure.
func trendsBenchFixture(b *testing.B, sc trendsScale) *trendsFixture {
	b.Helper()
	trendsFixMu.Lock()
	defer trendsFixMu.Unlock()
	if f, ok := trendsFixSet[sc.name]; ok {
		return f
	}
	f := buildTrendsFixture(sc)
	trendsFixSet[sc.name] = f
	return f
}

// buildTrendsFixture constructs a store with sc.urls URL records and
// sc.urls*sc.per comments, built directly — synth's realistic corpus
// would take far too long at 1M comments, and the ranking only cares
// about counts and flags.
func buildTrendsFixture(sc trendsScale) *trendsFixture {
	gen := ids.NewGenerator(0x7E4D5)
	base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	users := make([]*platform.User, sc.authors)
	for i := range users {
		users[i] = &platform.User{
			GabID:        ids.GabID(i + 1),
			Username:     fmt.Sprintf("bench-author-%03d", i),
			HasDissenter: true,
			AuthorID:     gen.NewAt(base),
		}
	}
	urls := make([]*platform.CommentURL, sc.urls)
	for i := range urls {
		urls[i] = &platform.CommentURL{
			ID:    gen.NewAt(base.Add(time.Duration(i%4096) * time.Second)),
			URL:   fmt.Sprintf("https://bench.trends/story/%07d", i),
			Title: fmt.Sprintf("Bench story #%d", i),
			// Baseline vote spread (positive and negative nets) so the
			// leaderboard benchmarks rank a realistic score surface.
			Ups:       (i * 7) % 23,
			Downs:     (i * 5) % 19,
			FirstSeen: base.Add(time.Duration(i%4096) * time.Second),
		}
	}
	comments := make([]*platform.Comment, sc.urls*sc.per)
	at := base.Add(2 * time.Hour)
	for i := range comments {
		comments[i] = &platform.Comment{
			ID:        gen.NewAt(at),
			URLID:     urls[i%sc.urls].ID,
			AuthorID:  users[i%sc.authors].AuthorID,
			Text:      "bench trends comment",
			CreatedAt: at,
			NSFW:      i%sc.nsfwMod == 0,
			Offensive: i%sc.offMod == 0,
		}
	}
	return &trendsFixture{
		db:     platform.New(users, urls, comments, nil),
		writer: users[0],
		hot:    urls[:min(64, len(urls))],
	}
}

// BenchmarkTrendsUnderWriteLoad is the moving-target regime: a
// concurrent mix where every 4th request posts a comment through
// POST /discussion/comment (invalidating all four cached trends views)
// and the rest read /trends. With the write-maintained index,
// ns_per_req must be independent of store size — compare the urls=1k
// and urls=100k sub-benchmarks, which differ 100x in store size. Each
// op issues underLoadBatch requests so the recorded cache_hit_pct is
// real even in the 1x smoke run (see underLoadBatch).
func BenchmarkTrendsUnderWriteLoad(b *testing.B) {
	for _, sc := range trendsScales {
		b.Run(sc.name, func(b *testing.B) {
			// Private fixture: this benchmark grows the store, and the
			// cached one must stay pristine for the render benchmarks.
			f := buildTrendsFixture(sc)
			s := dissenterweb.NewServer(f.db, dissenterweb.WithURLRateLimit(0, 0))
			s.RegisterSession("bench-writer", dissenterweb.Session{Username: f.writer.Username})
			srv := httptest.NewServer(s)
			defer srv.Close()
			client := benchClient()
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					for j := 0; j < underLoadBatch; j++ {
						i++
						if i%4 == 0 {
							n := seq.Add(1)
							cu := f.hot[int(n)%len(f.hot)]
							if !benchPostComment(b, client, srv.URL, cu.URL, "trends write load") {
								return
							}
							continue
						}
						benchGet(b, client, srv.URL+"/trends")
					}
				}
			})
			b.StopTimer()
			hits, misses := s.CacheStats()
			m := map[string]float64{
				"ns_per_req": float64(b.Elapsed().Nanoseconds()) / float64(b.N*underLoadBatch),
			}
			b.ReportMetric(m["ns_per_req"], "ns/req")
			if total := hits + misses; total > 0 {
				pct := float64(hits) / float64(total) * 100
				b.ReportMetric(pct, "cache_hit_pct")
				m["cache_hit_pct"] = pct
			}
			recordServeMetrics("TrendsUnderWriteLoad/"+sc.name, m)
		})
	}
}

// benchmarkRenderMiss measures a single render of one write-maintained
// ranking page with caching disabled, at both store scales — the pure
// cache-miss cost the acceptance budgets govern. Single-goroutine so
// the MemStats delta is the render's own allocation count. With the
// budgetEnv variable set, it fails past that allocation budget — the
// CI bench-smoke assertion that catches hot-path regressions.
func benchmarkRenderMiss(b *testing.B, path, metricPrefix, budgetEnv string) {
	for _, sc := range trendsScales {
		b.Run(sc.name, func(b *testing.B) {
			f := trendsBenchFixture(b, sc)
			s := dissenterweb.NewServer(f.db,
				dissenterweb.WithURLRateLimit(0, 0),
				dissenterweb.WithResponseCache(0, 0))
			req := httptest.NewRequest(http.MethodGet, path, nil)
			// Warm the immutable row-fragment memo so the measured ops
			// see the steady state, then measure.
			s.ServeHTTP(httptest.NewRecorder(), req)
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("%s status = %d", path, rec.Code)
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			recordServeMetrics(metricPrefix+"/"+sc.name, map[string]float64{
				"ns_per_op":     nsPerOp,
				"allocs_per_op": allocsPerOp,
			})
			if budget := os.Getenv(budgetEnv); budget != "" {
				max, err := strconv.ParseFloat(budget, 64)
				if err != nil {
					b.Fatalf("bad %s %q: %v", budgetEnv, budget, err)
				}
				if allocsPerOp > max {
					b.Fatalf("%s render allocates %.1f objects/op, budget %v — the hot path regressed",
						path, allocsPerOp, budget)
				}
			}
		})
	}
}

// BenchmarkTrendsRenderMiss pins the cache-miss trends render cost.
func BenchmarkTrendsRenderMiss(b *testing.B) {
	benchmarkRenderMiss(b, "/trends", "TrendsRenderMiss", "BENCH_TRENDS_MAX_ALLOCS")
}

// --- leaderboard scaling benchmarks --------------------------------------
//
// The net-vote leaderboard is write-maintained like trends, but over
// NON-monotone scores (platform vote index, rankheap.Exact): a
// cache-miss GET /leaderboard render must cost O(LeaderLimit)
// regardless of store size. BenchmarkLeaderboardRenderMiss pins the
// render cost at the same two store sizes as the trends benchmarks —
// ns/op and allocs/op must stay flat from 1k to 100k URLs, where a
// full-scan ranking would scale linearly. With
// BENCH_LEADER_MAX_ALLOCS=<n> set it fails past the allocation budget,
// mirroring the trends budget in CI. BenchmarkLeaderboardUnderVoteLoad
// is the adversarial shape: concurrent voters invalidating the cached
// leaderboard while readers hammer it.

// BenchmarkLeaderboardRenderMiss pins the cache-miss leaderboard
// render cost — same harness as the trends budget, different ranking.
func BenchmarkLeaderboardRenderMiss(b *testing.B) {
	benchmarkRenderMiss(b, "/leaderboard", "LeaderboardRenderMiss", "BENCH_LEADER_MAX_ALLOCS")
}

// BenchmarkLeaderboardUnderVoteLoad is the moving-target regime for
// votes: a concurrent mix where every 4th request casts a vote through
// /discussion/vote (invalidating the cached leaderboard by exact key)
// and the rest read /leaderboard. ns_per_req must be independent of
// store size — compare the urls=1k and urls=100k sub-benchmarks. Each
// op issues underLoadBatch requests so the recorded cache_hit_pct is
// real even in the 1x smoke run (see underLoadBatch).
func BenchmarkLeaderboardUnderVoteLoad(b *testing.B) {
	for _, sc := range trendsScales {
		b.Run(sc.name, func(b *testing.B) {
			// Private fixture: this benchmark moves the tallies, and the
			// cached one must stay pristine for the render benchmarks.
			f := buildTrendsFixture(sc)
			s := dissenterweb.NewServer(f.db, dissenterweb.WithURLRateLimit(0, 0))
			srv := httptest.NewServer(s)
			defer srv.Close()
			client := benchClient()
			// Votes answer with a redirect to the discussion page; stop
			// there so the bench measures the vote+leaderboard path, not
			// a discussion render.
			client.CheckRedirect = func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			}
			var seq atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					for j := 0; j < underLoadBatch; j++ {
						i++
						if i%4 == 0 {
							n := seq.Add(1)
							cu := f.hot[int(n)%len(f.hot)]
							dir := "up"
							if n%3 == 0 {
								dir = "down"
							}
							resp, err := client.Get(srv.URL + "/discussion/vote?dir=" + dir +
								"&url=" + url.QueryEscape(cu.URL))
							if err != nil {
								b.Errorf("vote: %v", err)
								return
							}
							_, _ = io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							if resp.StatusCode != http.StatusFound {
								b.Errorf("vote status = %d", resp.StatusCode)
								return
							}
							continue
						}
						benchGet(b, client, srv.URL+"/leaderboard")
					}
				}
			})
			b.StopTimer()
			hits, misses := s.CacheStats()
			m := map[string]float64{
				"ns_per_req": float64(b.Elapsed().Nanoseconds()) / float64(b.N*underLoadBatch),
			}
			b.ReportMetric(m["ns_per_req"], "ns/req")
			if total := hits + misses; total > 0 {
				pct := float64(hits) / float64(total) * 100
				b.ReportMetric(pct, "cache_hit_pct")
				m["cache_hit_pct"] = pct
			}
			recordServeMetrics("LeaderboardUnderVoteLoad/"+sc.name, m)
		})
	}
}

// --- discussion scaling benchmarks ---------------------------------------
//
// Discussion pages are assembled from the platform fragment view
// (pre-escaped per-comment fragments memoized at write time, per-view
// streams maintained incrementally), so a cache-miss FILL is O(delta):
// a memoized head, an O(1) stream snapshot, a counter read — never a
// walk over the page's comments and never a re-escape.
// BenchmarkDiscussionRenderMiss pins exactly that: allocs/op and ns/op
// must stay flat from a 100-comment page to a 10k-comment page (the
// seed render walked and escaped all 10k on every miss). The response
// body is written to a discarding ResponseWriter because shoveling the
// page's bytes is proportional to page size for ANY implementation;
// the quantity under test is the render work, which must not be. With
// BENCH_DISC_MAX_ALLOCS=<n> set it fails past the allocation budget,
// the third CI budget beside trends and leaderboard.

// discussionScales size the comments-per-URL axis; store size is held
// small so the only variable is page length.
var discussionScales = []trendsScale{
	{name: "comments=100", urls: 4, per: 100, authors: 16, nsfwMod: 13, offMod: 17},
	{name: "comments=10k", urls: 4, per: 10_000, authors: 16, nsfwMod: 13, offMod: 17},
}

// discardRW is an http.ResponseWriter whose body writes cost O(1); it
// implements io.StringWriter so io.WriteString never copies either.
type discardRW struct{ h http.Header }

func (d *discardRW) Header() http.Header               { return d.h }
func (d *discardRW) Write(b []byte) (int, error)       { return len(b), nil }
func (d *discardRW) WriteString(s string) (int, error) { return len(s), nil }
func (d *discardRW) WriteHeader(int)                   {}
func newDiscardRW() *discardRW                         { return &discardRW{h: http.Header{}} }

// BenchmarkDiscussionRenderMiss measures one uncached discussion fill
// at 100 and 10k comments per page — the acceptance gate is the 10k
// page staying within 2x of the 100-comment page on both ns/op and
// allocs/op.
func BenchmarkDiscussionRenderMiss(b *testing.B) {
	for _, sc := range discussionScales {
		b.Run(sc.name, func(b *testing.B) {
			f := buildTrendsFixture(sc)
			s := dissenterweb.NewServer(f.db,
				dissenterweb.WithURLRateLimit(0, 0),
				dissenterweb.WithResponseCache(0, 0))
			target := f.hot[0]
			req := httptest.NewRequest(http.MethodGet,
				"/discussion?url="+url.QueryEscape(target.URL), nil)
			// Warm the write-time memos (head fragment, comment stream)
			// so the measured ops see the steady state the production
			// path runs in, then measure the pure miss fill.
			s.ServeHTTP(newDiscardRW(), req)
			w := newDiscardRW()
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ServeHTTP(w, req)
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
			nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			recordServeMetrics("DiscussionRenderMiss/"+sc.name, map[string]float64{
				"ns_per_op":     nsPerOp,
				"allocs_per_op": allocsPerOp,
			})
			if budget := os.Getenv("BENCH_DISC_MAX_ALLOCS"); budget != "" {
				max, err := strconv.ParseFloat(budget, 64)
				if err != nil {
					b.Fatalf("bad BENCH_DISC_MAX_ALLOCS %q: %v", budget, err)
				}
				if allocsPerOp > max {
					b.Fatalf("discussion miss allocates %.1f objects/op at %s, budget %v — the hot path regressed",
						allocsPerOp, sc.name, budget)
				}
			}
		})
	}
}

// BenchmarkViralDiscussionUnderMixedLoad is the paper-scale adversarial
// shape (Rye, Blackburn & Beverly, Figs. 4–5): ONE viral URL with 10k+
// comments absorbing most reads AND most writes at once — concurrent
// posters appending comments, voters moving the tally, readers
// hammering the page. Comment posts append one memoized fragment to
// the live cache entries and votes patch two integers, so the hit rate
// stays high and ns_per_req stays flat in page size even though every
// request targets the same 10k-comment page. Batched like the other
// under-load benchmarks so the smoke run reports a real hit rate; ends
// with the staleness assertion (the next render must agree with the
// store).
func BenchmarkViralDiscussionUnderMixedLoad(b *testing.B) {
	f := buildTrendsFixture(trendsScale{
		name: "viral", urls: 4, per: 10_000, authors: 16, nsfwMod: 13, offMod: 17,
	})
	s := dissenterweb.NewServer(f.db, dissenterweb.WithURLRateLimit(0, 0))
	s.RegisterSession("bench-writer", dissenterweb.Session{Username: f.writer.Username})
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	client.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}
	viral := f.hot[0]
	page := srv.URL + "/discussion?url=" + url.QueryEscape(viral.URL)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			for j := 0; j < underLoadBatch; j++ {
				i++
				switch {
				case i%8 == 0: // poster
					n := seq.Add(1)
					if !benchPostComment(b, client, srv.URL, viral.URL,
						fmt.Sprintf("viral pile-on %d", n)) {
						return
					}
				case i%8 == 4: // voter
					dir := "up"
					if i%3 == 0 {
						dir = "down"
					}
					resp, err := client.Get(srv.URL + "/discussion/vote?dir=" + dir +
						"&url=" + url.QueryEscape(viral.URL))
					if err != nil {
						b.Errorf("vote: %v", err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusFound {
						b.Errorf("vote status = %d", resp.StatusCode)
						return
					}
				default: // reader
					benchGet(b, client, page)
				}
			}
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	m := map[string]float64{
		"ns_per_req": float64(b.Elapsed().Nanoseconds()) / float64(b.N*underLoadBatch),
	}
	b.ReportMetric(m["ns_per_req"], "ns/req")
	if total := hits + misses; total > 0 {
		pct := float64(hits) / float64(total) * 100
		b.ReportMetric(pct, "cache_hit_pct")
		m["cache_hit_pct"] = pct
	}
	recordServeMetrics("ViralDiscussionUnderMixedLoad", m)
	// Staleness assertion: the very next render must carry the store's
	// current visible-comment count — a dropped patch or invalidation
	// fails the benchmark, not just a test.
	countRe := regexp.MustCompile(`class="commentcount">(\d+)<`)
	resp, err := client.Get(page)
	if err != nil {
		b.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	mch := countRe.FindSubmatch(body)
	if mch == nil {
		b.Fatalf("no commentcount on %s", viral.URL)
	}
	visible := 0
	for _, c := range f.db.CommentsOnURL(viral.ID) {
		if !c.Hidden() {
			visible++
		}
	}
	if got, _ := strconv.Atoi(string(mch[1])); got != visible {
		b.Fatalf("stale render: shows %d comments, store holds %d visible", got, visible)
	}
}

// --- machine-readable baseline ------------------------------------------

var (
	serveMetricsMu     sync.Mutex
	serveMetrics       = map[string]map[string]float64{}
	serveMetricsLoaded bool
)

// recordServeMetrics accumulates serving-path benchmark results and,
// when BENCH_SERVE_JSON names a file, rewrites it after every record —
// `make bench` emits BENCH_serve.json this way, so the trajectory of
// the serving layer is diffable run over run.
//
// With BENCH_SERVE_MERGE also set, the existing file's entries are
// loaded before the first record instead of being discarded. The full
// `-bench=.` invocation runs WITHOUT merge so benchmarks that no
// longer exist fall out of the baseline; follow-up invocations in the
// same `make bench` (the `-cpu 1,2,4` hit-path sweep is a separate
// `go test` process) run WITH it so they extend the file rather than
// clobbering it.
func recordServeMetrics(name string, m map[string]float64) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		return
	}
	serveMetricsMu.Lock()
	defer serveMetricsMu.Unlock()
	if !serveMetricsLoaded {
		serveMetricsLoaded = true
		if os.Getenv("BENCH_SERVE_MERGE") != "" {
			if blob, err := os.ReadFile(path); err == nil {
				_ = json.Unmarshal(blob, &serveMetrics)
			}
		}
	}
	serveMetrics[name] = m
	blob, err := json.MarshalIndent(serveMetrics, "", "  ")
	if err == nil {
		_ = os.WriteFile(path, append(blob, '\n'), 0o644)
	}
}

func BenchmarkWebTrendsConcurrentCached(b *testing.B) {
	out := loadFixture(b)
	s := dissenterweb.NewServer(out.DB, dissenterweb.WithURLRateLimit(0, 0))
	srv := httptest.NewServer(s)
	defer srv.Close()
	client := benchClient()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, client, srv.URL+"/trends")
		}
	})
	b.StopTimer()
	hits, misses := s.CacheStats()
	if total := hits + misses; total > 0 {
		b.ReportMetric(float64(hits)/float64(total)*100, "cache_hit_pct")
	}
}
