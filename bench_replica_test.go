// Replication benchmarks: what the out-of-process read replica costs
// (write-to-visible lag over the HTTP stream) and what it buys (read
// throughput served entirely from the replica's own replayed store,
// while the stream keeps applying). Both land in BENCH_serve.json via
// recordServeMetrics, paired so the trade reads off one file.
package dissenter_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"dissenter/internal/dissenterweb"
	"dissenter/internal/ids"
	"dissenter/internal/platform"
	"dissenter/internal/replica"
)

// startBenchReplica wires a replica to a publisher over the primary
// and returns it running; cleanup stops the stream before the servers
// go away.
func startBenchReplica(b *testing.B, primary *platform.DB, opt replica.Options) *replica.Replica {
	b.Helper()
	pub := httptest.NewServer(&replica.Publisher{DB: primary})
	b.Cleanup(pub.Close)
	rep, err := replica.Open(b.TempDir(), pub.URL, opt)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		rep.Run(ctx)
	}()
	b.Cleanup(func() {
		cancel()
		<-done
		rep.Close()
	})
	return rep
}

// replicaBenchCorpus event-builds a small store on the primary so the
// replica's state comes entirely off the stream (no snapshot needed).
func replicaBenchCorpus(b *testing.B, db *platform.DB) []*platform.CommentURL {
	b.Helper()
	gen := ids.NewGenerator(0x5EED)
	for i := 0; i < 24; i++ {
		db.AddUser(&platform.User{
			GabID:    ids.GabID(1 + i),
			AuthorID: gen.New(),
			Username: fmt.Sprintf("bench-rep-%02d", i),
		})
	}
	users := allUsers(db)
	var urls []*platform.CommentURL
	for i := 0; i < 32; i++ {
		cu, _ := db.SubmitURL(&platform.CommentURL{
			ID:        gen.New(),
			URL:       fmt.Sprintf("https://bench.example/replica/%d", i),
			FirstSeen: time.Unix(1580000000+int64(i), 0).UTC(),
		})
		urls = append(urls, cu)
		for j := 0; j <= i%5; j++ {
			u := users[(i+j)%len(users)]
			db.AddComment(&platform.Comment{
				ID:        gen.NewAt(time.Unix(1580000100+int64(i*8+j), 0)),
				URLID:     cu.ID,
				AuthorID:  u.AuthorID,
				Text:      fmt.Sprintf("replica bench comment %d/%d", i, j),
				CreatedAt: time.Unix(1580000100+int64(i*8+j), 0).UTC(),
			})
		}
		db.Vote(cu.ID, i%7, i%3)
	}
	return urls
}

// BenchmarkReplicationLag measures write-to-visible latency: one write
// on the primary per iteration, then block until the replica's store
// has applied it off the HTTP stream (fsync on the replica's WAL is on
// the async persister, so this is apply lag, not durability lag).
func BenchmarkReplicationLag(b *testing.B) {
	primary := platform.New(nil, nil, nil, nil)
	urls := replicaBenchCorpus(b, primary)
	rep := startBenchReplica(b, primary, replica.Options{})
	target := primary.EventSeq()
	for rep.Seq() < target {
		time.Sleep(time.Millisecond)
	}
	cu := urls[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		primary.Vote(cu.ID, 1, 0)
		rep.DB().AwaitEvents(primary.EventSeq()-1, nil)
	}
	b.StopTimer()
	recordServeMetrics("ReplicationLag", map[string]float64{
		"lag_ns_per_event": float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		"events_applied":   float64(rep.Seq()),
	})
}

// BenchmarkReplicaReadConcurrent is the read half of the pair: parallel
// page fetches against a read-only web server over the replica's store,
// while the primary keeps writing and the stream keeps applying — the
// scale-out case the replica exists for. The event invalidator keeps
// the response cache coherent, so the hit rate is reported too.
//
// Batched like the other under-load benchmarks (underLoadBatch): the
// old single-request op meant the `make bench` 1x smoke run measured
// exactly one guaranteed-cold fetch and recorded cache_hit_pct: 0 and
// a ~14ms "read" into BENCH_serve.json — a stat-plumbing artifact.
// Discussion reads cycle a small hot subset for the same reason the
// primary-side load benchmarks do: crawler locality, not a uniform
// sweep of the corpus. ns_per_req in the baseline is per REQUEST.
func BenchmarkReplicaReadConcurrent(b *testing.B) {
	primary := platform.New(nil, nil, nil, nil)
	urls := replicaBenchCorpus(b, primary)

	var handler atomic.Value // *dissenterweb.Server
	bind := func(db *platform.DB) {
		s := dissenterweb.NewServer(db,
			dissenterweb.ReadOnly(),
			dissenterweb.WithURLRateLimit(0, 0))
		db.RegisterView(s.EventInvalidator())
		handler.Store(s)
	}
	rep := startBenchReplica(b, primary, replica.Options{OnState: bind})
	target := primary.EventSeq()
	for rep.Seq() < target {
		time.Sleep(time.Millisecond)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(*dissenterweb.Server).ServeHTTP(w, r)
	}))
	defer srv.Close()

	// Background write load on the primary for the stream to carry.
	ctx, cancel := context.WithCancel(context.Background())
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			default:
			}
			primary.Vote(urls[i%len(urls)].ID, 1, 0)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	client := benchClient()
	hot := urls[:8]
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			for j := 0; j < underLoadBatch; j++ {
				i++
				switch i % 4 {
				case 0:
					benchGet(b, client, srv.URL+"/trends")
				case 1:
					benchGet(b, client, srv.URL+"/leaderboard")
				default:
					benchGet(b, client, srv.URL+"/discussion?url="+url.QueryEscape(hot[i%len(hot)].URL))
				}
			}
		}
	})
	b.StopTimer()
	cancel()
	<-writerDone

	m := map[string]float64{
		"ns_per_req":  float64(b.Elapsed().Nanoseconds()) / float64(b.N*underLoadBatch),
		"replica_lag": float64(primary.EventSeq() - rep.Seq()),
	}
	b.ReportMetric(m["ns_per_req"], "ns/req")
	if hits, misses := handler.Load().(*dissenterweb.Server).CacheStats(); hits+misses > 0 {
		pct := float64(hits) / float64(hits+misses) * 100
		m["cache_hit_pct"] = pct
		b.ReportMetric(pct, "cache_hit_pct")
	}
	recordServeMetrics("ReplicaReadConcurrent", m)
}
